package tdl

import (
	"errors"
	"strings"
	"testing"

	"infobus/internal/mop"
)

func evalOK(t *testing.T, in *Interp, src string) mop.Value {
	t.Helper()
	v, err := in.EvalString(src)
	if err != nil {
		t.Fatalf("EvalString(%q): %v", src, err)
	}
	return v
}

func TestParser(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"(+ 1 2)", "(+ 1 2)"},
		{"(a (b c) \"str\")", `(a (b c) "str")`},
		{"'(1 2)", "'(1 2)"},
		{"; comment\n42", "42"},
		{"-3.5", "-3.5"},
		{"#t", "#t"},
		{"x-y?z", "x-y?z"},
	}
	for _, c := range cases {
		e, err := ParseOne(c.src)
		if err != nil {
			t.Errorf("ParseOne(%q): %v", c.src, err)
			continue
		}
		if got := FormatSexp(e); got != c.want {
			t.Errorf("ParseOne(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParserErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{"(", ErrUnexpectedEOF},
		{")", ErrUnbalancedParen},
		{`"abc`, ErrUnterminated},
		{`"a\q"`, ErrBadToken},
		{"(a))", ErrUnbalancedParen},
	}
	for _, c := range cases {
		if _, err := ParseAll(c.src); !errors.Is(err, c.want) {
			t.Errorf("ParseAll(%q) error = %v, want %v", c.src, err, c.want)
		}
	}
}

func TestArithmeticAndLogic(t *testing.T) {
	in := New(nil, nil)
	cases := []struct {
		src  string
		want mop.Value
	}{
		{"(+ 1 2 3)", int64(6)},
		{"(- 10 3 2)", int64(5)},
		{"(- 5)", int64(-5)},
		{"(* 2 3 4)", int64(24)},
		{"(/ 10 2)", int64(5)},
		{"(+ 1 2.5)", 3.5},
		{"(mod 10 3)", int64(1)},
		{"(= 3 3)", true},
		{"(= 3 3.0)", true},
		{"(< 1 2)", true},
		{"(> \"b\" \"a\")", true},
		{"(<= 2 2)", true},
		{"(not #f)", true},
		{"(and #t 1 \"x\")", true},
		{"(and #t #f)", false},
		{"(or #f 7)", int64(7)},
		{"(or #f #f)", false},
		{"(eq? (list 1 2) (list 1 2))", true},
		{"(if (< 1 2) \"yes\" \"no\")", "yes"},
		{"(if #f \"yes\")", nil},
	}
	for _, c := range cases {
		got := evalOK(t, in, c.src)
		if !mop.EqualValues(got, c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	in := New(nil, nil)
	for _, src := range []string{"(/ 1 0)", "(mod 1 0)", "(+ 1 \"x\")", "(< 1 \"x\")"} {
		if _, err := in.EvalString(src); err == nil {
			t.Errorf("%s should error", src)
		}
	}
}

func TestDefineLambdaLet(t *testing.T) {
	in := New(nil, nil)
	evalOK(t, in, "(define x 10)")
	if got := evalOK(t, in, "x"); got != int64(10) {
		t.Errorf("x = %v", got)
	}
	evalOK(t, in, "(define (square n) (* n n))")
	if got := evalOK(t, in, "(square 7)"); got != int64(49) {
		t.Errorf("(square 7) = %v", got)
	}
	if got := evalOK(t, in, "((lambda (a b) (+ a b)) 2 3)"); got != int64(5) {
		t.Errorf("lambda = %v", got)
	}
	if got := evalOK(t, in, "(let ((a 1) (b 2)) (+ a b))"); got != int64(3) {
		t.Errorf("let = %v", got)
	}
	// Closures capture their environment.
	evalOK(t, in, `(define (adder n) (lambda (x) (+ x n)))
	               (define add5 (adder 5))`)
	if got := evalOK(t, in, "(add5 3)"); got != int64(8) {
		t.Errorf("closure = %v", got)
	}
	// set! mutates enclosing binding.
	evalOK(t, in, `(define counter 0)
	               (define (bump) (set! counter (+ counter 1)))`)
	evalOK(t, in, "(bump) (bump)")
	if got := evalOK(t, in, "counter"); got != int64(2) {
		t.Errorf("counter = %v", got)
	}
	if _, err := in.EvalString("(set! nosuch 1)"); !errors.Is(err, ErrUnboundSymbol) {
		t.Errorf("set! unbound error = %v", err)
	}
	if _, err := in.EvalString("unbound"); !errors.Is(err, ErrUnboundSymbol) {
		t.Errorf("unbound error = %v", err)
	}
	if _, err := in.EvalString("(square 1 2)"); !errors.Is(err, ErrArity) {
		t.Errorf("arity error = %v", err)
	}
	if _, err := in.EvalString("(3 4)"); !errors.Is(err, ErrNotCallable) {
		t.Errorf("not callable error = %v", err)
	}
}

func TestWhileLoop(t *testing.T) {
	in := New(nil, nil)
	got := evalOK(t, in, `
	  (define i 0)
	  (define total 0)
	  (while (< i 5)
	    (set! total (+ total i))
	    (set! i (+ i 1)))
	  total`)
	if got != int64(10) {
		t.Errorf("while sum = %v", got)
	}
}

func TestListsAndHigherOrder(t *testing.T) {
	in := New(nil, nil)
	cases := []struct {
		src  string
		want string
	}{
		{"(list 1 2 3)", "(1 2 3)"},
		{"(length (list 1 2))", "2"},
		{"(nth (list \"a\" \"b\") 1)", "b"},
		{"(append (list 1) (list 2 3))", "(1 2 3)"},
		{"(map (lambda (x) (* x x)) (list 1 2 3))", "(1 4 9)"},
		{"(filter (lambda (x) (> x 1)) (list 1 2 3))", "(2 3)"},
	}
	for _, c := range cases {
		got := FormatValue(evalOK(t, in, c.src))
		if got != c.want {
			t.Errorf("%s = %s, want %s", c.src, got, c.want)
		}
	}
	if _, err := in.EvalString("(nth (list 1) 5)"); !errors.Is(err, ErrType) {
		t.Errorf("nth out of range error = %v", err)
	}
}

func TestStrings(t *testing.T) {
	in := New(nil, nil)
	cases := []struct {
		src  string
		want mop.Value
	}{
		{`(concat "a" "b" 3)`, "ab3"},
		{`(string-length "abcd")`, int64(4)},
		{`(substring "hello" 1 3)`, "el"},
		{`(contains? "hello world" "wor")`, true},
		{`(upcase "gm")`, "GM"},
	}
	for _, c := range cases {
		got := evalOK(t, in, c.src)
		if !mop.EqualValues(got, c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

const newsProgram = `
(defclass Story ()
  ((headline string)
   (body string)
   (sources (list string))))

(defclass DowJonesStory (Story)
  ((djCode string)))

(defmethod summary ((s Story))
  (concat "STORY: " (slot-value s 'headline)))

(defmethod summary ((s DowJonesStory))
  (concat "DJ/" (slot-value s 'djCode) ": " (slot-value s 'headline)))
`

func TestDefclassRegistersTypes(t *testing.T) {
	reg := mop.NewRegistry()
	in := New(reg, nil)
	evalOK(t, in, newsProgram)
	story, err := reg.Lookup("Story")
	if err != nil {
		t.Fatal(err)
	}
	dj, err := reg.Lookup("DowJonesStory")
	if err != nil {
		t.Fatal(err)
	}
	if !dj.IsSubtypeOf(story) {
		t.Error("TDL-defined subtype relation missing")
	}
	if a, ok := dj.Attr("sources"); !ok || a.Type.Kind() != mop.KindList {
		t.Errorf("sources attr = %+v, %v", a, ok)
	}
	if dj.NumAttrs() != 4 {
		t.Errorf("DowJonesStory attrs = %d", dj.NumAttrs())
	}
}

func TestMakeInstanceAndSlots(t *testing.T) {
	in := New(nil, nil)
	evalOK(t, in, newsProgram)
	got := evalOK(t, in, `
	  (define s (make-instance 'DowJonesStory
	              'headline "GM soars"
	              'djCode "GMC"
	              'sources (list "DJ" "wire")))
	  (slot-value s 'headline)`)
	if got != "GM soars" {
		t.Errorf("slot-value = %v", got)
	}
	if got := evalOK(t, in, "(set-slot! s 'headline \"updated\") (slot-value s 'headline)"); got != "updated" {
		t.Errorf("set-slot! = %v", got)
	}
	// Type errors surface from the mop layer.
	if _, err := in.EvalString("(set-slot! s 'headline 5)"); !errors.Is(err, mop.ErrTypeMismatch) {
		t.Errorf("set-slot! type error = %v", err)
	}
	if _, err := in.EvalString("(make-instance 'NoSuch)"); !errors.Is(err, mop.ErrTypeUnknown) {
		t.Errorf("make-instance unknown class error = %v", err)
	}
	if _, err := in.EvalString("(make-instance 'Story 'nope 1)"); !errors.Is(err, mop.ErrNoAttr) {
		t.Errorf("make-instance bad slot error = %v", err)
	}
}

func TestMethodDispatch(t *testing.T) {
	in := New(nil, nil)
	evalOK(t, in, newsProgram)
	evalOK(t, in, `
	  (define base (make-instance 'Story 'headline "plain"))
	  (define dj (make-instance 'DowJonesStory 'headline "GM" 'djCode "GMC"))`)
	if got := evalOK(t, in, "(summary base)"); got != "STORY: plain" {
		t.Errorf("summary base = %v", got)
	}
	if got := evalOK(t, in, "(summary dj)"); got != "DJ/GMC: GM" {
		t.Errorf("summary dj (most specific method) = %v", got)
	}
	// A subtype without its own method inherits the supertype's.
	evalOK(t, in, `
	  (defclass ReutersStory (Story) ((priority int)))
	  (define r (make-instance 'ReutersStory 'headline "re"))`)
	if got := evalOK(t, in, "(summary r)"); got != "STORY: re" {
		t.Errorf("inherited dispatch = %v", got)
	}
	// No applicable method.
	evalOK(t, in, "(defclass Other () ())")
	if _, err := in.EvalString("(summary (make-instance 'Other))"); !errors.Is(err, ErrNoMethod) {
		t.Errorf("no-method error = %v", err)
	}
	if _, err := in.EvalString("(summary 42)"); !errors.Is(err, ErrNoMethod) {
		t.Errorf("dispatch on non-object error = %v", err)
	}
	// Redefining a method on the same class replaces it (live upgrade).
	evalOK(t, in, `(defmethod summary ((s Story)) "v2")`)
	if got := evalOK(t, in, "(summary base)"); got != "v2" {
		t.Errorf("redefined method = %v", got)
	}
}

func TestIntrospectionBuiltins(t *testing.T) {
	in := New(nil, nil)
	evalOK(t, in, newsProgram)
	evalOK(t, in, "(define s (make-instance 'DowJonesStory 'headline \"h\"))")
	if got := evalOK(t, in, "(type-of s)"); got != "DowJonesStory" {
		t.Errorf("type-of = %v", got)
	}
	if got := evalOK(t, in, "(instance-of? s 'Story)"); got != true {
		t.Errorf("instance-of? = %v", got)
	}
	got := FormatValue(evalOK(t, in, "(attribute-names s)"))
	if got != "(headline body sources djCode)" {
		t.Errorf("attribute-names = %v", got)
	}
	if got := evalOK(t, in, "(attribute-type s 'sources)"); got != "list<string>" {
		t.Errorf("attribute-type = %v", got)
	}
	if got := evalOK(t, in, "(class-exists? 'Story)"); got != true {
		t.Errorf("class-exists? = %v", got)
	}
	if got := evalOK(t, in, "(class-exists? 'Nope)"); got != false {
		t.Errorf("class-exists? = %v", got)
	}
	desc := evalOK(t, in, "(describe 'DowJonesStory)").(string)
	if !strings.Contains(desc, "class DowJonesStory : Story") {
		t.Errorf("describe = %q", desc)
	}
	// Generic print utility works on TDL-defined instances too (P2).
	var sb strings.Builder
	in2 := New(nil, &sb)
	evalOK(t, in2, newsProgram)
	evalOK(t, in2, "(print (make-instance 'Story 'headline \"x\"))")
	if !strings.Contains(sb.String(), `headline: "x"`) {
		t.Errorf("print output = %q", sb.String())
	}
}

func TestDefclassErrors(t *testing.T) {
	in := New(nil, nil)
	cases := []struct {
		src  string
		want error
	}{
		{"(defclass)", ErrBadForm},
		{"(defclass X (NoSuper) ())", mop.ErrTypeUnknown},
		{"(defclass X () ((a nosuchtype)))", mop.ErrTypeUnknown},
		{"(defclass X () (a))", ErrBadForm},
		{"(defclass X () ((a int) (a int)))", mop.ErrDupAttr},
		{"(defmethod f ((x NoClass)) 1)", mop.ErrTypeUnknown},
		{"(defmethod f (x) 1)", ErrBadForm},
	}
	for _, c := range cases {
		if _, err := in.EvalString(c.src); !errors.Is(err, c.want) {
			t.Errorf("%s error = %v, want %v", c.src, err, c.want)
		}
	}
	// Redefinition of a class is rejected (types are immutable).
	evalOK(t, in, "(defclass X () ((a int)))")
	if _, err := in.EvalString("(defclass X () ((b int)))"); !errors.Is(err, mop.ErrTypeExists) {
		t.Errorf("class redefinition error = %v", err)
	}
}

func TestGoInterop(t *testing.T) {
	reg := mop.NewRegistry()
	in := New(reg, nil)
	evalOK(t, in, newsProgram)
	// Go code creates an object of a TDL-defined class and calls a TDL
	// method on it — the paper's "new types handled at run time".
	story, err := reg.Lookup("Story")
	if err != nil {
		t.Fatal(err)
	}
	obj := mop.MustNew(story).MustSet("headline", "from Go")
	in.Define("fromGo", obj)
	if got := evalOK(t, in, "(summary fromGo)"); got != "STORY: from Go" {
		t.Errorf("cross-language dispatch = %v", got)
	}
	v, err := in.Call("summary", obj)
	if err != nil || v != "STORY: from Go" {
		t.Errorf("Call = %v, %v", v, err)
	}
	if _, err := in.Call("nosuchfn"); !errors.Is(err, ErrUnboundSymbol) {
		t.Errorf("Call unknown error = %v", err)
	}
	names := in.GenericNames()
	if len(names) != 1 || names[0] != "summary" {
		t.Errorf("GenericNames = %v", names)
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	in := New(nil, nil)
	evalOK(t, in, "(define (loop n) (loop (+ n 1)))")
	if _, err := in.EvalString("(loop 0)"); !errors.Is(err, ErrDepth) {
		t.Errorf("runaway recursion error = %v", err)
	}
}

func TestQuoteForms(t *testing.T) {
	in := New(nil, nil)
	if got := evalOK(t, in, "'sym"); got != "sym" {
		t.Errorf("'sym = %v", got)
	}
	if got := FormatValue(evalOK(t, in, "'(a 1 (b))")); got != "(a 1 (b))" {
		t.Errorf("quoted list = %v", got)
	}
	if got := evalOK(t, in, "(quote x)"); got != "x" {
		t.Errorf("(quote x) = %v", got)
	}
	if got := evalOK(t, in, "nil"); got != nil {
		t.Errorf("nil = %v", got)
	}
}

func TestDefineBuiltinHostExtension(t *testing.T) {
	in := New(nil, nil)
	var published []string
	in.DefineBuiltin("publish", 2, func(args []mop.Value) (mop.Value, error) {
		subj, ok := args[0].(string)
		if !ok {
			return nil, errors.New("subject must be a string")
		}
		published = append(published, subj+"="+FormatValue(args[1]))
		return true, nil
	})
	if got := evalOK(t, in, `(publish 'fab5.temp 21.5)`); got != true {
		t.Errorf("publish = %v", got)
	}
	if len(published) != 1 || published[0] != "fab5.temp=21.5" {
		t.Errorf("published = %v", published)
	}
	// Errors from host builtins surface as evaluation errors.
	if _, err := in.EvalString(`(publish 42 "x")`); err == nil {
		t.Error("host error not propagated")
	}
	// Arity enforced.
	if _, err := in.EvalString(`(publish 'a)`); !errors.Is(err, ErrArity) {
		t.Errorf("arity error = %v", err)
	}
	// Variadic host builtin.
	in.DefineBuiltin("sum-all", -1, func(args []mop.Value) (mop.Value, error) {
		var total int64
		for _, a := range args {
			total += a.(int64)
		}
		return total, nil
	})
	if got := evalOK(t, in, "(sum-all 1 2 3 4)"); got != int64(10) {
		t.Errorf("sum-all = %v", got)
	}
}

func TestParserDepthGuard(t *testing.T) {
	deep := strings.Repeat("(", 100_000) + "1" + strings.Repeat(")", 100_000)
	if _, err := ParseAll(deep); !errors.Is(err, ErrTooNested) {
		t.Errorf("deep parse error = %v, want ErrTooNested", err)
	}
	// Reasonable nesting still parses.
	ok := strings.Repeat("(list ", 100) + "1" + strings.Repeat(")", 100)
	if _, err := ParseAll(ok); err != nil {
		t.Errorf("100-deep parse failed: %v", err)
	}
}

func TestCondAndLetStar(t *testing.T) {
	in := New(nil, nil)
	cases := []struct {
		src  string
		want mop.Value
	}{
		{`(cond ((< 2 1) "a") ((< 1 2) "b") (else "c"))`, "b"},
		{`(cond ((< 2 1) "a") (else "c"))`, "c"},
		{`(cond ((< 2 1) "a"))`, nil},
		{`(cond (7))`, int64(7)}, // bare truthy test returns its value
		{`(let* ((a 2) (b (* a a)) (c (+ a b))) c)`, int64(6)},
	}
	for _, c := range cases {
		got := evalOK(t, in, c.src)
		if !mop.EqualValues(got, c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
	if _, err := in.EvalString(`(cond bad)`); !errors.Is(err, ErrBadForm) {
		t.Errorf("cond bad clause = %v", err)
	}
	if _, err := in.EvalString(`(let* (x) 1)`); !errors.Is(err, ErrBadForm) {
		t.Errorf("let* bad binding = %v", err)
	}
}

func TestReduceAndReverse(t *testing.T) {
	in := New(nil, nil)
	if got := evalOK(t, in, "(reduce (lambda (acc x) (+ acc x)) 0 (list 1 2 3 4))"); got != int64(10) {
		t.Errorf("reduce = %v", got)
	}
	if got := evalOK(t, in, `(reduce (lambda (acc x) (concat acc x)) "" (list "a" "b" "c"))`); got != "abc" {
		t.Errorf("string reduce = %v", got)
	}
	if got := FormatValue(evalOK(t, in, "(reverse (list 1 2 3))")); got != "(3 2 1)" {
		t.Errorf("reverse = %v", got)
	}
	if _, err := in.EvalString("(reduce + 0 5)"); !errors.Is(err, ErrType) {
		t.Errorf("reduce non-list = %v", err)
	}
	if _, err := in.EvalString("(reverse 5)"); !errors.Is(err, ErrType) {
		t.Errorf("reverse non-list = %v", err)
	}
}
