package tdl

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"infobus/internal/mop"
)

// Interp is a TDL interpreter instance. Classes defined with defclass are
// registered in the interpreter's mop.Registry, making them visible to the
// bus, the wire format, and every introspective tool in the system.
//
// An Interp serialises evaluation internally, so it may be shared by
// concurrent services (e.g. an RMI server executing TDL-defined methods).
type Interp struct {
	mu      sync.Mutex
	reg     *mop.Registry
	global  *env
	methods map[string][]method
	out     io.Writer
	depth   int
}

// method is one defmethod definition: dispatch class plus closure.
type method struct {
	class *mop.Type
	fn    *closure
}

type env struct {
	vars   map[Symbol]mop.Value
	parent *env
}

func newEnv(parent *env) *env {
	return &env{vars: make(map[Symbol]mop.Value), parent: parent}
}

func (e *env) lookup(s Symbol) (mop.Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[s]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *env) set(s Symbol, v mop.Value) bool {
	for cur := e; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[s]; ok {
			cur.vars[s] = v
			return true
		}
	}
	return false
}

// closure is a user-defined function.
type closure struct {
	name   string
	params []Symbol
	body   []Sexp
	env    *env
}

// builtin is a primitive implemented in Go.
type builtin struct {
	name  string
	arity int // -1 for variadic
	fn    func(in *Interp, args []mop.Value) (mop.Value, error)
}

// Evaluation errors.
var (
	ErrUnboundSymbol = errors.New("tdl: unbound symbol")
	ErrNotCallable   = errors.New("tdl: value is not callable")
	ErrArity         = errors.New("tdl: wrong number of arguments")
	ErrBadForm       = errors.New("tdl: malformed special form")
	ErrNoMethod      = errors.New("tdl: no applicable method")
	ErrType          = errors.New("tdl: type error")
	ErrDepth         = errors.New("tdl: recursion too deep")
)

const maxDepth = 10_000

// New creates an interpreter that registers classes into reg. Output from
// (print ...) goes to out; pass nil to discard.
func New(reg *mop.Registry, out io.Writer) *Interp {
	if reg == nil {
		reg = mop.NewRegistry()
	}
	if out == nil {
		out = io.Discard
	}
	in := &Interp{
		reg:     reg,
		global:  newEnv(nil),
		methods: make(map[string][]method),
		out:     out,
	}
	in.installBuiltins()
	return in
}

// Registry returns the registry that defclass registers into.
func (in *Interp) Registry() *mop.Registry { return in.reg }

// EvalString parses and evaluates a program, returning the value of the
// last top-level expression.
func (in *Interp) EvalString(src string) (mop.Value, error) {
	exprs, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var last mop.Value
	for _, e := range exprs {
		last, err = in.eval(e, in.global)
		if err != nil {
			return nil, fmt.Errorf("evaluating %s: %w", FormatSexp(e), err)
		}
	}
	return last, nil
}

// Call invokes a TDL function or generic method by name with already
// evaluated arguments. RMI servers use this to execute TDL-defined
// operations.
func (in *Interp) Call(name string, args ...mop.Value) (mop.Value, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if ms, ok := in.methods[name]; ok && len(ms) > 0 {
		return in.dispatch(name, args)
	}
	v, ok := in.global.lookup(Symbol(name))
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrUnboundSymbol)
	}
	return in.apply(v, args)
}

// Define binds a global variable, e.g. to hand a Go-created object to TDL
// code.
func (in *Interp) Define(name string, v mop.Value) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.global.vars[Symbol(name)] = v
}

// GenericNames returns the names of all defined generic functions, sorted.
func (in *Interp) GenericNames() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.methods))
	for n := range in.methods {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Core evaluator

func (in *Interp) eval(e Sexp, ev *env) (mop.Value, error) {
	in.depth++
	defer func() { in.depth-- }()
	if in.depth > maxDepth {
		return nil, ErrDepth
	}
	switch x := e.(type) {
	case int64, float64, string, bool:
		return x, nil
	case Quoted:
		return quoteValue(x.X), nil
	case Symbol:
		if v, ok := ev.lookup(x); ok {
			return v, nil
		}
		return nil, fmt.Errorf("%q: %w", x, ErrUnboundSymbol)
	case []Sexp:
		return in.evalList(x, ev)
	case nil:
		return nil, nil
	default:
		return nil, fmt.Errorf("cannot evaluate %T: %w", e, ErrBadForm)
	}
}

// quoteValue converts a quoted syntax tree into a runtime value: symbols
// become strings (TDL's stand-in for CLOS symbols), lists become mop.List.
func quoteValue(e Sexp) mop.Value {
	switch x := e.(type) {
	case Symbol:
		return string(x)
	case []Sexp:
		out := make(mop.List, len(x))
		for i, el := range x {
			out[i] = quoteValue(el)
		}
		return out
	case Quoted:
		return quoteValue(x.X)
	default:
		return x
	}
}

func (in *Interp) evalList(list []Sexp, ev *env) (mop.Value, error) {
	if len(list) == 0 {
		return nil, fmt.Errorf("empty application: %w", ErrBadForm)
	}
	if head, ok := list[0].(Symbol); ok {
		switch head {
		case "quote":
			if len(list) != 2 {
				return nil, fmt.Errorf("quote: %w", ErrBadForm)
			}
			return quoteValue(list[1]), nil
		case "if":
			return in.evalIf(list, ev)
		case "define":
			return in.evalDefine(list, ev)
		case "set!":
			return in.evalSet(list, ev)
		case "lambda":
			return in.makeClosure("", list, ev)
		case "let":
			return in.evalLet(list, ev)
		case "progn", "begin":
			var last mop.Value
			var err error
			for _, e := range list[1:] {
				if last, err = in.eval(e, ev); err != nil {
					return nil, err
				}
			}
			return last, nil
		case "and":
			for _, e := range list[1:] {
				v, err := in.eval(e, ev)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					return false, nil
				}
			}
			return true, nil
		case "or":
			for _, e := range list[1:] {
				v, err := in.eval(e, ev)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					return v, nil
				}
			}
			return false, nil
		case "while":
			return in.evalWhile(list, ev)
		case "cond":
			return in.evalCond(list, ev)
		case "let*":
			return in.evalLetStar(list, ev)
		case "defclass":
			return in.evalDefclass(list)
		case "defmethod":
			return in.evalDefmethod(list, ev)
		}
	}
	// Function application. Generic dispatch takes precedence when a method
	// table exists for the head symbol and it has no lexical binding.
	fnExpr := list[0]
	if sym, ok := fnExpr.(Symbol); ok {
		if _, bound := ev.lookup(sym); !bound {
			if ms, isGeneric := in.methods[string(sym)]; isGeneric && len(ms) > 0 {
				args, err := in.evalArgs(list[1:], ev)
				if err != nil {
					return nil, err
				}
				return in.dispatch(string(sym), args)
			}
		}
	}
	fn, err := in.eval(fnExpr, ev)
	if err != nil {
		return nil, err
	}
	args, err := in.evalArgs(list[1:], ev)
	if err != nil {
		return nil, err
	}
	return in.apply(fn, args)
}

func (in *Interp) evalArgs(exprs []Sexp, ev *env) ([]mop.Value, error) {
	args := make([]mop.Value, len(exprs))
	for i, e := range exprs {
		v, err := in.eval(e, ev)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return args, nil
}

func (in *Interp) apply(fn mop.Value, args []mop.Value) (mop.Value, error) {
	switch f := fn.(type) {
	case *closure:
		if len(args) != len(f.params) {
			return nil, fmt.Errorf("%s expects %d args, got %d: %w", f.name, len(f.params), len(args), ErrArity)
		}
		ev := newEnv(f.env)
		for i, p := range f.params {
			ev.vars[p] = args[i]
		}
		var last mop.Value
		var err error
		for _, e := range f.body {
			if last, err = in.eval(e, ev); err != nil {
				return nil, err
			}
		}
		return last, nil
	case *builtin:
		if f.arity >= 0 && len(args) != f.arity {
			return nil, fmt.Errorf("%s expects %d args, got %d: %w", f.name, f.arity, len(args), ErrArity)
		}
		return f.fn(in, args)
	default:
		return nil, fmt.Errorf("%s: %w", FormatValue(fn), ErrNotCallable)
	}
}

func truthy(v mop.Value) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	default:
		return true
	}
}

// ---------------------------------------------------------------------------
// Special forms

func (in *Interp) evalIf(list []Sexp, ev *env) (mop.Value, error) {
	if len(list) != 3 && len(list) != 4 {
		return nil, fmt.Errorf("if: %w", ErrBadForm)
	}
	cond, err := in.eval(list[1], ev)
	if err != nil {
		return nil, err
	}
	if truthy(cond) {
		return in.eval(list[2], ev)
	}
	if len(list) == 4 {
		return in.eval(list[3], ev)
	}
	return nil, nil
}

func (in *Interp) evalDefine(list []Sexp, ev *env) (mop.Value, error) {
	// (define name expr) or (define (name params...) body...)
	if len(list) < 3 {
		return nil, fmt.Errorf("define: %w", ErrBadForm)
	}
	switch target := list[1].(type) {
	case Symbol:
		if len(list) != 3 {
			return nil, fmt.Errorf("define %s: %w", target, ErrBadForm)
		}
		v, err := in.eval(list[2], ev)
		if err != nil {
			return nil, err
		}
		ev.vars[target] = v
		return v, nil
	case []Sexp:
		if len(target) == 0 {
			return nil, fmt.Errorf("define: empty name list: %w", ErrBadForm)
		}
		name, ok := target[0].(Symbol)
		if !ok {
			return nil, fmt.Errorf("define: function name must be a symbol: %w", ErrBadForm)
		}
		params, err := paramSymbols(target[1:])
		if err != nil {
			return nil, err
		}
		fn := &closure{name: string(name), params: params, body: list[2:], env: ev}
		ev.vars[name] = fn
		return fn, nil
	default:
		return nil, fmt.Errorf("define: %w", ErrBadForm)
	}
}

func (in *Interp) evalSet(list []Sexp, ev *env) (mop.Value, error) {
	if len(list) != 3 {
		return nil, fmt.Errorf("set!: %w", ErrBadForm)
	}
	name, ok := list[1].(Symbol)
	if !ok {
		return nil, fmt.Errorf("set!: target must be a symbol: %w", ErrBadForm)
	}
	v, err := in.eval(list[2], ev)
	if err != nil {
		return nil, err
	}
	if !ev.set(name, v) {
		return nil, fmt.Errorf("set! %q: %w", name, ErrUnboundSymbol)
	}
	return v, nil
}

func (in *Interp) makeClosure(name string, list []Sexp, ev *env) (mop.Value, error) {
	// (lambda (params...) body...)
	if len(list) < 3 {
		return nil, fmt.Errorf("lambda: %w", ErrBadForm)
	}
	paramList, ok := list[1].([]Sexp)
	if !ok {
		return nil, fmt.Errorf("lambda: parameter list expected: %w", ErrBadForm)
	}
	params, err := paramSymbols(paramList)
	if err != nil {
		return nil, err
	}
	return &closure{name: name, params: params, body: list[2:], env: ev}, nil
}

func paramSymbols(list []Sexp) ([]Symbol, error) {
	params := make([]Symbol, len(list))
	for i, p := range list {
		s, ok := p.(Symbol)
		if !ok {
			return nil, fmt.Errorf("parameter %d is not a symbol: %w", i, ErrBadForm)
		}
		params[i] = s
	}
	return params, nil
}

func (in *Interp) evalLet(list []Sexp, ev *env) (mop.Value, error) {
	// (let ((name expr)...) body...)
	if len(list) < 3 {
		return nil, fmt.Errorf("let: %w", ErrBadForm)
	}
	bindings, ok := list[1].([]Sexp)
	if !ok {
		return nil, fmt.Errorf("let: binding list expected: %w", ErrBadForm)
	}
	inner := newEnv(ev)
	for _, b := range bindings {
		pair, ok := b.([]Sexp)
		if !ok || len(pair) != 2 {
			return nil, fmt.Errorf("let: binding must be (name expr): %w", ErrBadForm)
		}
		name, ok := pair[0].(Symbol)
		if !ok {
			return nil, fmt.Errorf("let: binding name must be a symbol: %w", ErrBadForm)
		}
		v, err := in.eval(pair[1], ev)
		if err != nil {
			return nil, err
		}
		inner.vars[name] = v
	}
	var last mop.Value
	var err error
	for _, e := range list[2:] {
		if last, err = in.eval(e, inner); err != nil {
			return nil, err
		}
	}
	return last, nil
}

// evalCond handles (cond (test expr...)... (else expr...)).
func (in *Interp) evalCond(list []Sexp, ev *env) (mop.Value, error) {
	for _, clause := range list[1:] {
		c, ok := clause.([]Sexp)
		if !ok || len(c) < 1 {
			return nil, fmt.Errorf("cond: clause must be (test expr...): %w", ErrBadForm)
		}
		isElse := false
		if sym, ok := c[0].(Symbol); ok && sym == "else" {
			isElse = true
		}
		var test mop.Value = true
		if !isElse {
			var err error
			if test, err = in.eval(c[0], ev); err != nil {
				return nil, err
			}
		}
		if !truthy(test) {
			continue
		}
		var last mop.Value = test
		var err error
		for _, e := range c[1:] {
			if last, err = in.eval(e, ev); err != nil {
				return nil, err
			}
		}
		return last, nil
	}
	return nil, nil
}

// evalLetStar handles (let* ((a 1) (b (+ a 1))) body...): each binding sees
// the previous ones.
func (in *Interp) evalLetStar(list []Sexp, ev *env) (mop.Value, error) {
	if len(list) < 3 {
		return nil, fmt.Errorf("let*: %w", ErrBadForm)
	}
	bindings, ok := list[1].([]Sexp)
	if !ok {
		return nil, fmt.Errorf("let*: binding list expected: %w", ErrBadForm)
	}
	inner := newEnv(ev)
	for _, b := range bindings {
		pair, ok := b.([]Sexp)
		if !ok || len(pair) != 2 {
			return nil, fmt.Errorf("let*: binding must be (name expr): %w", ErrBadForm)
		}
		name, ok := pair[0].(Symbol)
		if !ok {
			return nil, fmt.Errorf("let*: binding name must be a symbol: %w", ErrBadForm)
		}
		v, err := in.eval(pair[1], inner) // sequential scope
		if err != nil {
			return nil, err
		}
		inner.vars[name] = v
	}
	var last mop.Value
	var err error
	for _, e := range list[2:] {
		if last, err = in.eval(e, inner); err != nil {
			return nil, err
		}
	}
	return last, nil
}

func (in *Interp) evalWhile(list []Sexp, ev *env) (mop.Value, error) {
	if len(list) < 2 {
		return nil, fmt.Errorf("while: %w", ErrBadForm)
	}
	var last mop.Value
	for {
		cond, err := in.eval(list[1], ev)
		if err != nil {
			return nil, err
		}
		if !truthy(cond) {
			return last, nil
		}
		for _, e := range list[2:] {
			if last, err = in.eval(e, ev); err != nil {
				return nil, err
			}
		}
	}
}

// ---------------------------------------------------------------------------
// defclass / defmethod / dispatch

// evalDefclass handles
//
//	(defclass Name (Super...) ((slot typeSpec)...))
//
// and registers the resulting class in the interpreter's registry.
func (in *Interp) evalDefclass(list []Sexp) (mop.Value, error) {
	if len(list) != 4 {
		return nil, fmt.Errorf("defclass: want (defclass Name (supers) (slots)): %w", ErrBadForm)
	}
	name, ok := list[1].(Symbol)
	if !ok {
		return nil, fmt.Errorf("defclass: name must be a symbol: %w", ErrBadForm)
	}
	superList, ok := list[2].([]Sexp)
	if !ok {
		return nil, fmt.Errorf("defclass %s: supertype list expected: %w", name, ErrBadForm)
	}
	supers := make([]*mop.Type, 0, len(superList))
	for _, s := range superList {
		sym, ok := s.(Symbol)
		if !ok {
			return nil, fmt.Errorf("defclass %s: supertype must be a symbol: %w", name, ErrBadForm)
		}
		st, err := in.reg.Lookup(string(sym))
		if err != nil {
			return nil, fmt.Errorf("defclass %s: %w", name, err)
		}
		supers = append(supers, st)
	}
	slotList, ok := list[3].([]Sexp)
	if !ok {
		return nil, fmt.Errorf("defclass %s: slot list expected: %w", name, ErrBadForm)
	}
	attrs := make([]mop.Attr, 0, len(slotList))
	for _, s := range slotList {
		pair, ok := s.([]Sexp)
		if !ok || len(pair) != 2 {
			return nil, fmt.Errorf("defclass %s: slot must be (name type): %w", name, ErrBadForm)
		}
		slotName, ok := pair[0].(Symbol)
		if !ok {
			return nil, fmt.Errorf("defclass %s: slot name must be a symbol: %w", name, ErrBadForm)
		}
		typ, err := in.typeSpec(pair[1])
		if err != nil {
			return nil, fmt.Errorf("defclass %s slot %s: %w", name, slotName, err)
		}
		attrs = append(attrs, mop.Attr{Name: string(slotName), Type: typ})
	}
	class, err := mop.NewClass(string(name), supers, attrs, nil)
	if err != nil {
		return nil, err
	}
	if err := in.reg.Register(class); err != nil {
		return nil, err
	}
	return string(name), nil
}

// typeSpec resolves a slot type: a symbol naming a type, or (list T).
func (in *Interp) typeSpec(e Sexp) (*mop.Type, error) {
	switch x := e.(type) {
	case Symbol:
		return in.reg.Lookup(string(x))
	case []Sexp:
		if len(x) == 2 {
			if head, ok := x[0].(Symbol); ok && head == "list" {
				elem, err := in.typeSpec(x[1])
				if err != nil {
					return nil, err
				}
				return mop.ListOf(elem), nil
			}
		}
		return nil, fmt.Errorf("bad type spec %s: %w", FormatSexp(e), ErrBadForm)
	default:
		return nil, fmt.Errorf("bad type spec %s: %w", FormatSexp(e), ErrBadForm)
	}
}

// evalDefmethod handles
//
//	(defmethod name ((self Class) more-params...) body...)
//
// Dispatch is on the class of the first argument (single dispatch — the
// subset of CLOS that fits "a small, efficient run-time environment").
func (in *Interp) evalDefmethod(list []Sexp, ev *env) (mop.Value, error) {
	if len(list) < 4 {
		return nil, fmt.Errorf("defmethod: %w", ErrBadForm)
	}
	name, ok := list[1].(Symbol)
	if !ok {
		return nil, fmt.Errorf("defmethod: name must be a symbol: %w", ErrBadForm)
	}
	paramList, ok := list[2].([]Sexp)
	if !ok || len(paramList) == 0 {
		return nil, fmt.Errorf("defmethod %s: parameter list with dispatch parameter expected: %w", name, ErrBadForm)
	}
	first, ok := paramList[0].([]Sexp)
	if !ok || len(first) != 2 {
		return nil, fmt.Errorf("defmethod %s: first parameter must be (name Class): %w", name, ErrBadForm)
	}
	selfName, ok1 := first[0].(Symbol)
	className, ok2 := first[1].(Symbol)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("defmethod %s: first parameter must be (name Class): %w", name, ErrBadForm)
	}
	class, err := in.reg.Lookup(string(className))
	if err != nil {
		return nil, fmt.Errorf("defmethod %s: %w", name, err)
	}
	if class.Kind() != mop.KindClass {
		return nil, fmt.Errorf("defmethod %s: dispatch type %s is not a class: %w", name, className, ErrType)
	}
	params := []Symbol{selfName}
	rest, err := paramSymbols(paramList[1:])
	if err != nil {
		return nil, err
	}
	params = append(params, rest...)
	fn := &closure{name: string(name), params: params, body: list[3:], env: ev}

	// Replace an existing method on the identical class, else append.
	ms := in.methods[string(name)]
	for i, m := range ms {
		if m.class == class {
			ms[i].fn = fn
			return string(name), nil
		}
	}
	in.methods[string(name)] = append(ms, method{class: class, fn: fn})
	return string(name), nil
}

// dispatch selects and invokes the most specific applicable method for the
// class of args[0].
func (in *Interp) dispatch(name string, args []mop.Value) (mop.Value, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("%s: generic call needs a dispatch argument: %w", name, ErrArity)
	}
	obj, ok := args[0].(*mop.Object)
	if !ok {
		return nil, fmt.Errorf("%s: dispatch argument is %s, not an object: %w", name, FormatValue(args[0]), ErrNoMethod)
	}
	var best *method
	for i := range in.methods[name] {
		m := &in.methods[name][i]
		if !obj.Type().IsSubtypeOf(m.class) {
			continue
		}
		if best == nil || m.class.IsSubtypeOf(best.class) {
			best = m
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%s on class %s: %w", name, obj.Type().Name(), ErrNoMethod)
	}
	return in.apply(best.fn, args)
}

// FormatValue renders a runtime value for the REPL and error messages.
func FormatValue(v mop.Value) string {
	switch x := v.(type) {
	case *closure:
		if x.name != "" {
			return "#<function " + x.name + ">"
		}
		return "#<lambda>"
	case *builtin:
		return "#<builtin " + x.name + ">"
	case *mop.Object:
		return mop.Sprint(x)
	case string:
		return x
	case mop.List:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = FormatValue(e)
		}
		return "(" + strings.Join(parts, " ") + ")"
	case nil:
		return "nil"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// DefineBuiltin binds a Go function as a TDL builtin, letting host
// applications expose capabilities (publishing on the bus, querying a
// repository, ...) to interpreted code — the mechanism behind the
// "interpreter-driven" application style of §5.1. arity < 0 makes the
// builtin variadic.
func (in *Interp) DefineBuiltin(name string, arity int, fn func(args []mop.Value) (mop.Value, error)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.global.vars[Symbol(name)] = &builtin{
		name:  name,
		arity: arity,
		fn: func(_ *Interp, args []mop.Value) (mop.Value, error) {
			return fn(args)
		},
	}
}
