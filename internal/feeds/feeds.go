// Package feeds generates synthetic raw news-feed traffic in two distinct
// vendor wire formats, standing in for the Dow Jones and Reuters
// communication feeds of the paper's trading-floor example (§5). "Each raw
// news service defines its own news format" — the two formats here differ
// in framing, field naming, and list encodings, so the adapters
// (internal/adapter) genuinely translate rather than relabel.
//
// Generation is deterministic for a given seed, which lets tests compare
// the adapter's parse output against the generator's ground truth.
package feeds

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// StoryFacts is the ground truth behind one generated story, used by tests
// and by the adapters' golden checks.
type StoryFacts struct {
	Ticker    string
	Category  string // equity, bond, commodity
	Headline  string
	Body      string
	Sources   []string
	Countries []string
	Groups    []GroupFact
	Published time.Time
	Urgent    bool
	// Vendor-specific extras.
	DJCode      string // Dow-Jones-like feeds
	ReutersSlug string // Reuters-like feeds
	Priority    int64  // Reuters-like feeds
}

// GroupFact is one industry-group weighting.
type GroupFact struct {
	Code   string
	Weight float64
}

var (
	tickers    = []string{"GMC", "IBM", "TKN", "SUNW", "HPQ", "AAPL", "F", "BA", "KO", "GE"}
	categories = []string{"equity", "bond", "commodity"}
	verbs      = []string{"surges", "slips", "announces record earnings", "recalls product line",
		"names new chief executive", "expands fabrication capacity", "settles patent dispute"}
	groupCodes = []string{"AUTO", "FIN", "TECH", "AERO", "ENRG", "CHEM"}
	countries  = []string{"US", "DE", "JP", "GB", "FR", "KR"}
	sources    = []string{"wire-1", "wire-7", "floor-desk", "overseas-bureau"}
	bodyBits   = []string{
		"Analysts said the move had been widely anticipated.",
		"Trading volume was heavy through the afternoon session.",
		"The company declined further comment.",
		"Institutional investors reacted cautiously.",
		"The announcement follows months of speculation.",
		"Competitors are expected to respond within the quarter.",
	}
)

// Generator produces deterministic synthetic stories.
type Generator struct {
	rng  *rand.Rand
	seq  int
	base time.Time
}

// NewGenerator creates a generator seeded for reproducibility. Stories are
// timestamped starting at the paper's publication era.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:  rand.New(rand.NewSource(seed)),
		base: time.Date(1993, time.December, 6, 9, 30, 0, 0, time.UTC),
	}
}

// Next produces the facts of the next story.
func (g *Generator) Next() StoryFacts {
	g.seq++
	ticker := tickers[g.rng.Intn(len(tickers))]
	verb := verbs[g.rng.Intn(len(verbs))]
	nGroups := 1 + g.rng.Intn(2)
	var groups []GroupFact
	used := map[string]bool{}
	remaining := 1.0
	for i := 0; i < nGroups; i++ {
		code := groupCodes[g.rng.Intn(len(groupCodes))]
		if used[code] {
			continue
		}
		used[code] = true
		w := remaining
		if i < nGroups-1 {
			w = float64(int(remaining*0.6*100)) / 100
			remaining -= w
		}
		groups = append(groups, GroupFact{Code: code, Weight: w})
	}
	nBody := 2 + g.rng.Intn(3)
	var body []string
	for i := 0; i < nBody; i++ {
		body = append(body, bodyBits[g.rng.Intn(len(bodyBits))])
	}
	f := StoryFacts{
		Ticker:      ticker,
		Category:    categories[g.rng.Intn(len(categories))],
		Headline:    fmt.Sprintf("%s %s", ticker, verb),
		Body:        strings.Join(body, " "),
		Sources:     pick(g.rng, sources, 1+g.rng.Intn(2)),
		Countries:   pick(g.rng, countries, 1+g.rng.Intn(3)),
		Groups:      groups,
		Published:   g.base.Add(time.Duration(g.seq) * 37 * time.Second),
		Urgent:      g.rng.Intn(5) == 0,
		DJCode:      ticker,
		ReutersSlug: strings.ToLower(ticker) + fmt.Sprintf("-%04d", g.seq),
		Priority:    int64(1 + g.rng.Intn(3)),
	}
	return f
}

func pick(rng *rand.Rand, pool []string, n int) []string {
	idx := rng.Perm(len(pool))
	out := make([]string, 0, n)
	for _, i := range idx[:n] {
		out = append(out, pool[i])
	}
	return out
}

// Subject returns the bus subject for a story, per the paper's convention:
// "news.equity.gmc" for stories on General Motors.
func (f StoryFacts) Subject() string {
	return "news." + f.Category + "." + strings.ToLower(f.Ticker)
}

// ---------------------------------------------------------------------------
// Vendor formats

// DJRaw renders the facts in the Dow-Jones-like dot-directive format:
//
//	.START
//	.CODE GMC
//	.CAT equity
//	.HEAD GMC surges
//	.TIME 1993-12-06T09:30:37Z
//	.URG 1
//	.IND AUTO:0.60,FIN:0.40
//	.SRC wire-1;floor-desk
//	.CTY US,DE
//	.TEXT
//	body...
//	.END
func DJRaw(f StoryFacts) string {
	var b strings.Builder
	b.WriteString(".START\n")
	fmt.Fprintf(&b, ".CODE %s\n", f.DJCode)
	fmt.Fprintf(&b, ".CAT %s\n", f.Category)
	fmt.Fprintf(&b, ".HEAD %s\n", f.Headline)
	fmt.Fprintf(&b, ".TIME %s\n", f.Published.UTC().Format(time.RFC3339))
	urg := 0
	if f.Urgent {
		urg = 1
	}
	fmt.Fprintf(&b, ".URG %d\n", urg)
	var inds []string
	for _, g := range f.Groups {
		inds = append(inds, fmt.Sprintf("%s:%.2f", g.Code, g.Weight))
	}
	fmt.Fprintf(&b, ".IND %s\n", strings.Join(inds, ","))
	fmt.Fprintf(&b, ".SRC %s\n", strings.Join(f.Sources, ";"))
	fmt.Fprintf(&b, ".CTY %s\n", strings.Join(f.Countries, ","))
	b.WriteString(".TEXT\n")
	b.WriteString(f.Body)
	b.WriteString("\n.END\n")
	return b.String()
}

// ReutersRaw renders the facts in the Reuters-like ZCZC framing:
//
//	ZCZC
//	SLUG gmc-0001
//	PRIORITY 2
//	HEADLINE GMC surges
//	CATEGORY equity
//	TIMESTAMP 749900437
//	SOURCES wire-1 floor-desk
//	COUNTRIES US DE
//	INDUSTRIES AUTO=0.60 FIN=0.40
//	TEXT
//	body...
//	NNNN
func ReutersRaw(f StoryFacts) string {
	var b strings.Builder
	b.WriteString("ZCZC\n")
	fmt.Fprintf(&b, "SLUG %s\n", f.ReutersSlug)
	fmt.Fprintf(&b, "PRIORITY %d\n", f.Priority)
	fmt.Fprintf(&b, "HEADLINE %s\n", f.Headline)
	fmt.Fprintf(&b, "CATEGORY %s\n", f.Category)
	fmt.Fprintf(&b, "TICKER %s\n", f.Ticker)
	fmt.Fprintf(&b, "TIMESTAMP %d\n", f.Published.Unix())
	fmt.Fprintf(&b, "SOURCES %s\n", strings.Join(f.Sources, " "))
	fmt.Fprintf(&b, "COUNTRIES %s\n", strings.Join(f.Countries, " "))
	var inds []string
	for _, g := range f.Groups {
		inds = append(inds, fmt.Sprintf("%s=%.2f", g.Code, g.Weight))
	}
	fmt.Fprintf(&b, "INDUSTRIES %s\n", strings.Join(inds, " "))
	b.WriteString("TEXT\n")
	b.WriteString(f.Body)
	b.WriteString("\nNNNN\n")
	return b.String()
}
