package feeds

import (
	"strings"
	"testing"
)

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(42), NewGenerator(42)
	for i := 0; i < 20; i++ {
		fa, fb := a.Next(), b.Next()
		if fa.Headline != fb.Headline || fa.Subject() != fb.Subject() || fa.Body != fb.Body {
			t.Fatalf("story %d differs across same-seed generators", i)
		}
	}
	c := NewGenerator(43)
	same := 0
	a2 := NewGenerator(42)
	for i := 0; i < 20; i++ {
		if a2.Next().Headline == c.Next().Headline {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds produced identical streams")
	}
}

func TestFactsWellFormed(t *testing.T) {
	g := NewGenerator(7)
	for i := 0; i < 100; i++ {
		f := g.Next()
		if f.Headline == "" || f.Body == "" || f.Ticker == "" {
			t.Fatalf("story %d has empty core fields: %+v", i, f)
		}
		if len(f.Sources) == 0 || len(f.Countries) == 0 || len(f.Groups) == 0 {
			t.Fatalf("story %d has empty lists: %+v", i, f)
		}
		if !strings.HasPrefix(f.Subject(), "news.") {
			t.Fatalf("subject = %q", f.Subject())
		}
		if f.Priority < 1 || f.Priority > 3 {
			t.Fatalf("priority = %d", f.Priority)
		}
		total := 0.0
		for _, gr := range f.Groups {
			if gr.Weight <= 0 || gr.Weight > 1 {
				t.Fatalf("group weight = %v", gr.Weight)
			}
			total += gr.Weight
		}
		if total > 1.001 {
			t.Fatalf("weights sum to %v", total)
		}
	}
}

func TestVendorFormatsDiffer(t *testing.T) {
	g := NewGenerator(1)
	f := g.Next()
	dj, re := DJRaw(f), ReutersRaw(f)
	if !strings.HasPrefix(dj, ".START\n") || !strings.Contains(dj, ".END") {
		t.Errorf("DJ framing missing:\n%s", dj)
	}
	if !strings.HasPrefix(re, "ZCZC\n") || !strings.Contains(re, "NNNN") {
		t.Errorf("Reuters framing missing:\n%s", re)
	}
	// The two formats must genuinely differ in structure.
	if strings.Contains(re, ".HEAD") || strings.Contains(dj, "HEADLINE ") {
		t.Error("vendor formats leak each other's field syntax")
	}
	// Both carry the headline content.
	if !strings.Contains(dj, f.Headline) || !strings.Contains(re, f.Headline) {
		t.Error("headline missing from raw output")
	}
	// Monotonic timestamps.
	f2 := g.Next()
	if !f2.Published.After(f.Published) {
		t.Error("timestamps not increasing")
	}
}
