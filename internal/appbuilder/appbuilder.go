// Package appbuilder implements the application builder of §5.1: "an
// interpreter-driven, user interface toolkit ... It is possible to examine
// the list of available services on the Information Bus ... Services are
// self-describing, so users can inspect the interface description for each
// service. Using that information, a user can quickly construct a basic
// user interface for any service. This whole process requires only a few
// minutes, and typically no compilation is involved."
//
// This is the text-mode equivalent: point it at a service subject and it
// discovers the service, introspects the interface that travelled in the
// discovery reply (P2), renders an operation menu, generates a prompt-per-
// parameter dialogue from each operation's signature (§5.2: "dialogue
// boxes that are based on the operations' signatures can lead the user
// through interactions with the new service"), and invokes over RMI. No
// part of it knows any service ahead of time.
package appbuilder

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/rmi"
	"infobus/internal/transport"
)

// UI errors.
var (
	ErrNoInterface = errors.New("appbuilder: service published no interface")
	ErrBadInput    = errors.New("appbuilder: cannot convert input to parameter type")
	ErrUnsupported = errors.New("appbuilder: parameter type has no text input form")
)

// UI is a generated service user interface.
type UI struct {
	client  *rmi.Client
	service string
	iface   *mop.Type
	ops     []mop.Operation
}

// Build dials the service and constructs its UI from the remotely
// introspected interface.
func Build(bus *core.Bus, seg transport.Segment, service string, opts rmi.DialOptions) (*UI, error) {
	client, err := rmi.Dial(bus, seg, service, opts)
	if err != nil {
		return nil, err
	}
	iface := client.Interface()
	if iface == nil {
		_ = client.Close()
		return nil, fmt.Errorf("%q: %w", service, ErrNoInterface)
	}
	ops := append([]mop.Operation(nil), iface.Operations()...)
	sort.Slice(ops, func(i, j int) bool { return ops[i].Name < ops[j].Name })
	return &UI{client: client, service: service, iface: iface, ops: ops}, nil
}

// Close releases the RMI connection.
func (u *UI) Close() error { return u.client.Close() }

// Interface returns the introspected service interface.
func (u *UI) Interface() *mop.Type { return u.iface }

// Menu renders the operation menu, one numbered entry per operation with
// its full signature.
func (u *UI) Menu() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s (%s) ===\n", u.service, u.iface.Name())
	for i, op := range u.ops {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, op.Signature())
	}
	b.WriteString(" q. quit\n")
	return b.String()
}

// Operations returns the menu's operations in display order.
func (u *UI) Operations() []mop.Operation { return u.ops }

// Run drives the full interactive loop: print menu, read a selection,
// prompt per parameter, invoke, print the result; repeat until "q" or EOF.
func (u *UI) Run(in io.Reader, out io.Writer) error {
	r := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, u.Menu())
		fmt.Fprint(out, "select: ")
		if !r.Scan() {
			fmt.Fprintln(out)
			return nil
		}
		choice := strings.TrimSpace(r.Text())
		if choice == "q" || choice == "quit" {
			return nil
		}
		idx, err := strconv.Atoi(choice)
		if err != nil || idx < 1 || idx > len(u.ops) {
			fmt.Fprintf(out, "no such entry %q\n\n", choice)
			continue
		}
		op := u.ops[idx-1]
		args, err := u.promptArgs(op, r, out)
		if err != nil {
			fmt.Fprintf(out, "input error: %v\n\n", err)
			continue
		}
		result, err := u.client.Invoke(op.Name, args...)
		if err != nil {
			fmt.Fprintf(out, "invocation failed: %v\n\n", err)
			continue
		}
		fmt.Fprintf(out, "-> %s\n\n", mop.Sprint(result))
	}
}

// promptArgs generates the per-parameter dialogue from the signature.
func (u *UI) promptArgs(op mop.Operation, r *bufio.Scanner, out io.Writer) ([]mop.Value, error) {
	args := make([]mop.Value, 0, len(op.Params))
	for _, p := range op.Params {
		fmt.Fprintf(out, "  %s (%s): ", p.Name, p.Type.Name())
		if !r.Scan() {
			return nil, io.ErrUnexpectedEOF
		}
		v, err := ParseValue(p.Type, strings.TrimSpace(r.Text()))
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

// ParseValue converts one line of user input into a value of the declared
// parameter type. Lists are comma-separated; Any tries int, float, bool,
// then falls back to string.
func ParseValue(t *mop.Type, text string) (mop.Value, error) {
	switch t.Kind() {
	case mop.KindString:
		return text, nil
	case mop.KindInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%q as int: %w", text, ErrBadInput)
		}
		return n, nil
	case mop.KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%q as float: %w", text, ErrBadInput)
		}
		return f, nil
	case mop.KindBool:
		switch strings.ToLower(text) {
		case "true", "t", "yes", "y", "1":
			return true, nil
		case "false", "f", "no", "n", "0":
			return false, nil
		}
		return nil, fmt.Errorf("%q as bool: %w", text, ErrBadInput)
	case mop.KindList:
		if text == "" {
			return mop.List{}, nil
		}
		parts := strings.Split(text, ",")
		out := make(mop.List, 0, len(parts))
		for _, part := range parts {
			v, err := ParseValue(t.Elem(), strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case mop.KindAny:
		if n, err := strconv.ParseInt(text, 10, 64); err == nil {
			return n, nil
		}
		if f, err := strconv.ParseFloat(text, 64); err == nil {
			return f, nil
		}
		if text == "true" || text == "false" {
			return text == "true", nil
		}
		return text, nil
	default:
		return nil, fmt.Errorf("%s: %w", t.Name(), ErrUnsupported)
	}
}
