package appbuilder

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/telemetry"
)

// SysBrowser is the application builder pointed at the bus itself: it
// subscribes to the reserved "_sys.>" telemetry space and keeps the latest
// self-describing stats object per node. Like the service UI, it knows no
// schema ahead of time — everything it renders arrived on the bus with its
// class attached (P2).
type SysBrowser struct {
	bus *core.Bus
	sub *core.Subscription

	mu     sync.Mutex
	latest map[string]*mop.Object // node -> latest SysStats (or SysPong)
	nonce  int64

	done chan struct{}
	wg   sync.WaitGroup
}

// BrowseSys subscribes to the system-telemetry subjects and starts
// collecting stats publications.
func BrowseSys(bus *core.Bus) (*SysBrowser, error) {
	sub, err := bus.Subscribe("_sys.>")
	if err != nil {
		return nil, err
	}
	b := &SysBrowser{
		bus:    bus,
		sub:    sub,
		latest: make(map[string]*mop.Object),
		done:   make(chan struct{}),
	}
	b.wg.Add(1)
	go b.collect()
	return b, nil
}

// Close stops collecting.
func (b *SysBrowser) Close() error {
	close(b.done)
	b.sub.Cancel()
	b.wg.Wait()
	return nil
}

func (b *SysBrowser) collect() {
	defer b.wg.Done()
	for {
		select {
		case <-b.done:
			return
		case ev, ok := <-b.sub.C:
			if !ok {
				return
			}
			obj, ok := ev.Value.(*mop.Object)
			if !ok {
				continue
			}
			// Key by the self-declared node attribute when present; no
			// type names are consulted, so future system classes browse
			// just as well.
			node, err := obj.Get("node")
			if err != nil {
				continue
			}
			name, ok := node.(string)
			if !ok {
				continue
			}
			b.mu.Lock()
			b.latest[name] = obj
			b.mu.Unlock()
		}
	}
}

// Ping publishes a probe on "_sys.ping"; every exporting node answers with
// a pong and a fresh stats object.
func (b *SysBrowser) Ping() error {
	b.mu.Lock()
	b.nonce++
	nonce := b.nonce
	b.mu.Unlock()
	return b.bus.Publish(telemetry.PingSubject, nonce)
}

// Nodes lists the nodes heard from, sorted.
func (b *SysBrowser) Nodes() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	nodes := make([]string, 0, len(b.latest))
	for n := range b.latest {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// Render pretty-prints the latest object heard from a node through the
// generic introspective print utility.
func (b *SysBrowser) Render(node string) (string, bool) {
	b.mu.Lock()
	obj := b.latest[node]
	b.mu.Unlock()
	if obj == nil {
		return "", false
	}
	return mop.Sprint(obj), true
}

// Run drives the interactive browse loop: list nodes, show one, ping;
// repeat until "q" or EOF.
func (b *SysBrowser) Run(in io.Reader, out io.Writer) error {
	r := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "=== bus telemetry (_sys.>) ===\n")
		for _, n := range b.Nodes() {
			fmt.Fprintf(out, "  %s\n", n)
		}
		fmt.Fprint(out, "node name to show, p to ping, q to quit\nselect: ")
		if !r.Scan() {
			fmt.Fprintln(out)
			return nil
		}
		choice := strings.TrimSpace(r.Text())
		switch choice {
		case "q", "quit":
			return nil
		case "p", "ping":
			if err := b.Ping(); err != nil {
				fmt.Fprintf(out, "ping failed: %v\n\n", err)
				continue
			}
			// Give answers a moment to arrive before re-listing.
			time.Sleep(200 * time.Millisecond)
			fmt.Fprintln(out)
		case "":
			fmt.Fprintln(out)
		default:
			text, ok := b.Render(choice)
			if !ok {
				fmt.Fprintf(out, "no such node %q\n\n", choice)
				continue
			}
			fmt.Fprintf(out, "-> %s\n\n", text)
		}
	}
}
