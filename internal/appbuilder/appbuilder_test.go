package appbuilder

import (
	"errors"
	"strings"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/rmi"
	"infobus/internal/transport"
)

func fastReliable() reliable.Config {
	return reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
}

func newBus(t *testing.T, seg transport.Segment, host string) *core.Bus {
	t.Helper()
	h, err := core.NewHost(seg, host, core.HostConfig{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	b, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func dialOpts() rmi.DialOptions {
	return rmi.DialOptions{
		DiscoveryWindow: 200 * time.Millisecond,
		Timeout:         400 * time.Millisecond,
		Retries:         3,
		Reliable:        fastReliable(),
	}
}

// startFactoryConfig serves a small "Factory Configuration System"-style
// service the builder has never seen.
func startFactoryConfig(t *testing.T, seg transport.Segment) {
	t.Helper()
	iface := mop.MustNewClass("FactoryConfig", nil, nil, []mop.Operation{
		{Name: "setLimit", Params: []mop.Param{
			{Name: "station", Type: mop.String},
			{Name: "celsius", Type: mop.Float},
		}, Result: mop.Bool},
		{Name: "stations", Result: mop.ListOf(mop.String)},
		{Name: "scale", Params: []mop.Param{
			{Name: "values", Type: mop.ListOf(mop.Int)},
			{Name: "by", Type: mop.Int},
		}, Result: mop.ListOf(mop.Int)},
	})
	bus := newBus(t, seg, "config-server")
	limits := map[string]float64{}
	srv, err := rmi.NewServer(bus, seg, "svc.factoryconfig", iface,
		func(op string, args []mop.Value) (mop.Value, error) {
			switch op {
			case "setLimit":
				limits[args[0].(string)] = args[1].(float64)
				return true, nil
			case "stations":
				out := mop.List{}
				for s := range limits {
					out = append(out, s)
				}
				return out, nil
			case "scale":
				in := args[0].(mop.List)
				by := args[1].(int64)
				out := make(mop.List, len(in))
				for i, v := range in {
					out[i] = v.(int64) * by
				}
				return out, nil
			default:
				return nil, rmi.ErrBadOp
			}
		}, rmi.ServerOptions{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
}

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return transport.NewSimSegment(cfg)
}

func TestBuildMenuFromIntrospection(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	startFactoryConfig(t, seg)
	ui, err := Build(newBus(t, seg, "builder"), seg, "svc.factoryconfig", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ui.Close()
	menu := ui.Menu()
	for _, want := range []string{
		"FactoryConfig",
		"setLimit(station string, celsius float) -> bool",
		"stations() -> list<string>",
		"scale(values list<int>, by int) -> list<int>",
	} {
		if !strings.Contains(menu, want) {
			t.Errorf("menu missing %q:\n%s", want, menu)
		}
	}
	if len(ui.Operations()) != 3 {
		t.Errorf("operations = %d", len(ui.Operations()))
	}
}

func TestRunDrivesServiceThroughGeneratedDialogue(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	startFactoryConfig(t, seg)
	ui, err := Build(newBus(t, seg, "builder"), seg, "svc.factoryconfig", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ui.Close()

	// The menu is sorted: 1=scale, 2=setLimit, 3=stations. The scripted
	// user sets a limit, lists stations, scales a list, then quits.
	script := strings.Join([]string{
		"2",        // setLimit
		"litho8",   // station
		"23.5",     // celsius
		"3",        // stations
		"1",        // scale
		"1, 2, 3",  // values (comma list)
		"10",       // by
		"nonsense", // invalid selection handled gracefully
		"q",
	}, "\n")
	var out strings.Builder
	if err := ui.Run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"station (string):",
		"celsius (float):",
		"-> true",
		`-> ["litho8"]`,
		"-> [10, 20, 30]",
		`no such entry "nonsense"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("session missing %q:\n%s", want, text)
		}
	}
}

func TestRunReportsBadInputAndRemoteErrors(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	startFactoryConfig(t, seg)
	ui, err := Build(newBus(t, seg, "builder"), seg, "svc.factoryconfig", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer ui.Close()
	script := "2\nlitho8\nnot-a-float\nq\n"
	var out strings.Builder
	if err := ui.Run(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "input error:") {
		t.Errorf("bad input not reported:\n%s", out.String())
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		t    *mop.Type
		in   string
		want mop.Value
		ok   bool
	}{
		{mop.String, "hello", "hello", true},
		{mop.Int, "42", int64(42), true},
		{mop.Int, "x", nil, false},
		{mop.Float, "2.5", 2.5, true},
		{mop.Float, "x", nil, false},
		{mop.Bool, "yes", true, true},
		{mop.Bool, "0", false, true},
		{mop.Bool, "maybe", nil, false},
		{mop.ListOf(mop.Int), "1,2, 3", mop.List{int64(1), int64(2), int64(3)}, true},
		{mop.ListOf(mop.Int), "1,x", nil, false},
		{mop.ListOf(mop.String), "", mop.List{}, true},
		{mop.Any, "7", int64(7), true},
		{mop.Any, "7.5", 7.5, true},
		{mop.Any, "true", true, true},
		{mop.Any, "word", "word", true},
	}
	for _, c := range cases {
		got, err := ParseValue(c.t, c.in)
		if c.ok {
			if err != nil || !mop.EqualValues(got, c.want) {
				t.Errorf("ParseValue(%s, %q) = %v, %v; want %v", c.t.Name(), c.in, got, err, c.want)
			}
		} else if !errors.Is(err, ErrBadInput) {
			t.Errorf("ParseValue(%s, %q) error = %v, want ErrBadInput", c.t.Name(), c.in, err)
		}
	}
	// Unsupported parameter kinds are reported, not guessed.
	cls := mop.MustNewClass("X", nil, nil, nil)
	if _, err := ParseValue(cls, "x"); !errors.Is(err, ErrUnsupported) {
		t.Errorf("class param error = %v", err)
	}
}

func TestBuildFailsWithoutServer(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	opts := dialOpts()
	opts.DiscoveryWindow = 50 * time.Millisecond
	if _, err := Build(newBus(t, seg, "builder"), seg, "svc.ghost", opts); !errors.Is(err, rmi.ErrNoServer) {
		t.Errorf("Build error = %v", err)
	}
}
