package appbuilder

import (
	"strings"
	"testing"
	"time"

	"infobus/internal/core"
)

// TestBrowseSysRendersLiveStats points the builder at the bus itself: a
// host exports "_sys.stats.<node>" and the browser renders it with no
// telemetry schema linked in.
func TestBrowseSysRendersLiveStats(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	h, err := core.NewHost(seg, "fab-gauge", core.HostConfig{
		Reliable:  fastReliable(),
		Telemetry: core.TelemetryConfig{StatsInterval: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })

	mon := newBus(t, seg, "fab-mon")
	browser, err := BrowseSys(mon)
	if err != nil {
		t.Fatal(err)
	}
	defer browser.Close()

	deadline := time.After(10 * time.Second)
	for {
		if nodes := browser.Nodes(); len(nodes) > 0 {
			if nodes[0] != "fab-gauge" {
				t.Fatalf("nodes = %v", nodes)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("browser never heard a stats publication")
		case <-time.After(10 * time.Millisecond):
		}
	}
	text, ok := browser.Render("fab-gauge")
	if !ok {
		t.Fatal("no render for fab-gauge")
	}
	for _, want := range []string{"SysStats", "fab-gauge", "daemon.published_local"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}

	// The interactive loop: show the node, then quit.
	var out strings.Builder
	in := strings.NewReader("fab-gauge\nq\n")
	if err := browser.Run(in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SysStats") {
		t.Errorf("dialogue output missing stats:\n%s", out.String())
	}

	if err := browser.Ping(); err != nil {
		t.Errorf("ping = %v", err)
	}
}
