package adapter

import (
	"errors"
	"strings"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/feeds"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/transport"
)

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return transport.NewSimSegment(cfg)
}

func newBus(t *testing.T, seg transport.Segment, host string) *core.Bus {
	t.Helper()
	h, err := core.NewHost(seg, host, core.HostConfig{Reliable: reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	b, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func defTypes(t *testing.T) NewsTypes {
	t.Helper()
	types, err := DefineNewsTypes(mop.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return types
}

// factsMatch asserts that a parsed story matches the generator's ground
// truth for the fields both vendors carry.
func factsMatch(t *testing.T, obj *mop.Object, f feeds.StoryFacts) {
	t.Helper()
	if obj.MustGet("headline") != f.Headline {
		t.Errorf("headline = %v, want %v", obj.MustGet("headline"), f.Headline)
	}
	if obj.MustGet("body") != f.Body {
		t.Errorf("body mismatch")
	}
	if obj.MustGet("category") != f.Category {
		t.Errorf("category = %v", obj.MustGet("category"))
	}
	if obj.MustGet("urgent") != f.Urgent {
		t.Errorf("urgent = %v, want %v", obj.MustGet("urgent"), f.Urgent)
	}
	srcs := obj.MustGet("sources").(mop.List)
	if len(srcs) != len(f.Sources) {
		t.Fatalf("sources = %v, want %v", srcs, f.Sources)
	}
	for i, s := range f.Sources {
		if srcs[i] != s {
			t.Errorf("source %d = %v, want %v", i, srcs[i], s)
		}
	}
	groups := obj.MustGet("groups").(mop.List)
	if len(groups) != len(f.Groups) {
		t.Fatalf("groups = %d, want %d", len(groups), len(f.Groups))
	}
	for i, g := range f.Groups {
		got := groups[i].(*mop.Object)
		if got.MustGet("code") != g.Code {
			t.Errorf("group %d code = %v, want %v", i, got.MustGet("code"), g.Code)
		}
		w := got.MustGet("weight").(float64)
		if w < g.Weight-0.005 || w > g.Weight+0.005 {
			t.Errorf("group %d weight = %v, want ~%v", i, w, g.Weight)
		}
	}
	pub := obj.MustGet("published").(time.Time)
	if pub.Unix() != f.Published.Unix() {
		t.Errorf("published = %v, want %v", pub, f.Published)
	}
}

func TestParseDJAgainstGenerator(t *testing.T) {
	types := defTypes(t)
	gen := feeds.NewGenerator(7)
	for i := 0; i < 25; i++ {
		f := gen.Next()
		obj, err := ParseDJ(feeds.DJRaw(f), types)
		if err != nil {
			t.Fatalf("story %d: %v", i, err)
		}
		if obj.Type() != types.DJ {
			t.Fatalf("parsed class = %s", obj.Type().Name())
		}
		factsMatch(t, obj, f)
		if obj.MustGet("djCode") != f.DJCode {
			t.Errorf("djCode = %v", obj.MustGet("djCode"))
		}
		subj, err := StorySubject(obj)
		if err != nil || subj != f.Subject() {
			t.Errorf("subject = %q, want %q (%v)", subj, f.Subject(), err)
		}
	}
}

func TestParseReutersAgainstGenerator(t *testing.T) {
	types := defTypes(t)
	gen := feeds.NewGenerator(11)
	for i := 0; i < 25; i++ {
		f := gen.Next()
		obj, err := ParseReuters(feeds.ReutersRaw(f), types)
		if err != nil {
			t.Fatalf("story %d: %v", i, err)
		}
		if obj.Type() != types.Reuters {
			t.Fatalf("parsed class = %s", obj.Type().Name())
		}
		if obj.MustGet("headline") != f.Headline {
			t.Errorf("headline mismatch")
		}
		if obj.MustGet("slug") != f.ReutersSlug {
			t.Errorf("slug = %v", obj.MustGet("slug"))
		}
		if obj.MustGet("priority") != f.Priority {
			t.Errorf("priority = %v", obj.MustGet("priority"))
		}
		// Reuters urgency is derived from priority.
		if obj.MustGet("urgent") != (f.Priority <= 1) {
			t.Errorf("urgent = %v with priority %d", obj.MustGet("urgent"), f.Priority)
		}
	}
}

func TestParseErrors(t *testing.T) {
	types := defTypes(t)
	djCases := []string{
		"",
		".START\n.BOGUS x\n.END\n",
		".START\n.TIME not-a-time\n.END\n",
		".START\n.IND AUTO\n.END\n",
		"no framing at all",
	}
	for _, raw := range djCases {
		if _, err := ParseDJ(raw, types); !errors.Is(err, ErrBadFeedData) {
			t.Errorf("ParseDJ(%q) error = %v", raw, err)
		}
	}
	reutersCases := []string{
		"",
		"ZCZC\nPRIORITY abc\nNNNN\n",
		"ZCZC\nINDUSTRIES AUTO\nNNNN\n",
		"ZCZC\nUNKNOWNFIELD x\nNNNN\n",
	}
	for _, raw := range reutersCases {
		if _, err := ParseReuters(raw, types); !errors.Is(err, ErrBadFeedData) {
			t.Errorf("ParseReuters(%q) error = %v", raw, err)
		}
	}
}

func TestBothVendorsAreSubtypesOfStory(t *testing.T) {
	types := defTypes(t)
	if !types.DJ.IsSubtypeOf(types.Story) || !types.Reuters.IsSubtypeOf(types.Story) {
		t.Fatal("vendor classes must subtype Story")
	}
	// Re-defining against the same registry reuses the registered types.
	reg := mop.NewRegistry()
	t1, err := DefineNewsTypes(reg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := DefineNewsTypes(reg)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Story != t2.Story {
		t.Error("second DefineNewsTypes should reuse registered classes")
	}
}

func TestFeedAdapterPublishes(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	adapterBus := newBus(t, seg, "adapter-host")
	consumerBus := newBus(t, seg, "consumer-host")
	types, err := DefineNewsTypes(adapterBus.Registry())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := consumerBus.Subscribe("news.>")
	if err != nil {
		t.Fatal(err)
	}

	gen := feeds.NewGenerator(3)
	in := make(chan string, 8)
	fa := NewFeedAdapter("dj", adapterBus, types, ParseDJ, in)
	defer fa.Close()

	var want []feeds.StoryFacts
	for i := 0; i < 5; i++ {
		f := gen.Next()
		want = append(want, f)
		in <- feeds.DJRaw(f)
	}
	in <- "garbage that will not parse"
	close(in)

	for i, f := range want {
		select {
		case ev := <-sub.C:
			if ev.Subject.String() != f.Subject() {
				t.Errorf("story %d subject = %s, want %s", i, ev.Subject, f.Subject())
			}
			obj := ev.Value.(*mop.Object)
			if obj.MustGet("headline") != f.Headline {
				t.Errorf("story %d headline mismatch", i)
			}
			// The consumer host reconstructs the vendor subtype (P2/P3).
			if obj.Type().Name() != "DowJonesStory" {
				t.Errorf("story %d class = %s", i, obj.Type().Name())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("story %d never arrived", i)
		}
	}
	fa.Wait()
	if fa.Published() != 5 || fa.Rejected() != 1 {
		t.Errorf("published=%d rejected=%d", fa.Published(), fa.Rejected())
	}
}

func TestLegacyWIPTerminal(t *testing.T) {
	sys := NewLegacyWIP()
	s := sys.NewSession()
	if !strings.Contains(s.Screen(), "1. MOVE LOT") {
		t.Fatalf("main menu missing: %q", s.Screen())
	}
	// Unknown selection.
	if scr := s.SendLine("9"); !strings.Contains(scr, "INVALID SELECTION") {
		t.Errorf("screen = %q", scr)
	}
	// Query before any move: not found.
	s.SendLine("2")
	if scr := s.SendLine("L42"); !strings.Contains(scr, "LOT L42 NOT FOUND") {
		t.Errorf("screen = %q", scr)
	}
	s.SendLine("")
	// Move a lot.
	s.SendLine("1")
	s.SendLine("L42")
	if scr := s.SendLine("litho8"); !strings.Contains(scr, "LOT L42 MOVED TO LITHO8 - OK") {
		t.Errorf("screen = %q", scr)
	}
	s.SendLine("")
	// Query again.
	s.SendLine("2")
	if scr := s.SendLine("L42"); !strings.Contains(scr, "LOT L42 AT LITHO8 MOVES 1") {
		t.Errorf("screen = %q", scr)
	}
	s.SendLine("")
	// Empty lot id re-prompts.
	s.SendLine("1")
	if scr := s.SendLine(""); !strings.Contains(scr, "LOT ID REQUIRED") {
		t.Errorf("screen = %q", scr)
	}
	// Logoff.
	s.SendLine("L1")
	s.SendLine("etch2")
	s.SendLine("")
	if scr := s.SendLine("3"); !strings.Contains(scr, "SESSION ENDED") {
		t.Errorf("screen = %q", scr)
	}
}

func TestWIPAdapterActsAsVirtualUser(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	adapterBus := newBus(t, seg, "adapter-host")
	appBus := newBus(t, seg, "app-host")

	legacy := NewLegacyWIP()
	wa, err := NewWIPAdapter(adapterBus, legacy)
	if err != nil {
		t.Fatal(err)
	}
	defer wa.Close()

	statusSub, err := appBus.Subscribe(WIPStatusSubject + ".>")
	if err != nil {
		t.Fatal(err)
	}

	move := mop.MustNew(WIPMoveType).MustSet("lot", "L7").MustSet("station", "diffusion3")
	if err := appBus.Publish(WIPMoveSubject, move); err != nil {
		t.Fatal(err)
	}

	select {
	case ev := <-statusSub.C:
		st := ev.Value.(*mop.Object)
		if st.MustGet("lot") != "L7" || st.MustGet("station") != "DIFFUSION3" || st.MustGet("moves") != int64(1) {
			t.Errorf("status = %s", mop.Sprint(st))
		}
		if ev.Subject.String() != WIPStatusSubject+".l7" {
			t.Errorf("status subject = %s", ev.Subject)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("status never published")
	}
	if wa.Moves() != 1 {
		t.Errorf("Moves = %d", wa.Moves())
	}

	// Second move bumps the move counter inside the legacy system.
	move2 := mop.MustNew(WIPMoveType).MustSet("lot", "L7").MustSet("station", "litho1")
	if err := appBus.Publish(WIPMoveSubject, move2); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-statusSub.C:
		st := ev.Value.(*mop.Object)
		if st.MustGet("moves") != int64(2) || st.MustGet("station") != "LITHO1" {
			t.Errorf("status = %s", mop.Sprint(st))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second status never published")
	}

	// Malformed command counts as an error, does not wedge the adapter.
	bad := mop.MustNew(WIPMoveType).MustSet("lot", "").MustSet("station", "x")
	if err := appBus.Publish(WIPMoveSubject, bad); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for wa.Errors() == 0 {
		select {
		case <-deadline:
			t.Fatal("error never counted")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestParseQueryScreenErrors(t *testing.T) {
	if _, err := parseQueryScreen("LOT X NOT FOUND\n"); !errors.Is(err, ErrLegacyRejected) {
		t.Errorf("not found error = %v", err)
	}
	if _, err := parseQueryScreen("LOT L1 WEIRD LINE\n"); !errors.Is(err, ErrBadFeedData) {
		t.Errorf("weird line error = %v", err)
	}
	if _, err := parseQueryScreen("nothing relevant\n"); !errors.Is(err, ErrBadFeedData) {
		t.Errorf("no lot line error = %v", err)
	}
	if _, err := parseQueryScreen("LOT L1 AT S1 MOVES notanumber\n"); !errors.Is(err, ErrBadFeedData) {
		t.Errorf("bad moves error = %v", err)
	}
}
