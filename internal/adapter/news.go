// Package adapter implements the adapter layer of §4: "To integrate
// existing applications into the Information Bus we use software modules
// called adapters. These adapters convert information from the data
// objects of the Information Bus into data understood by the applications,
// and vice versa. Adapters must live in two worlds at once, translating
// communication mechanisms and data schemas."
//
// Three adapters are provided:
//
//   - a Dow-Jones-like feed adapter and a Reuters-like feed adapter, each
//     parsing its vendor's raw wire format into a vendor-specific subtype
//     of the common Story supertype and publishing under a subject for
//     the story's primary topic (§5, Figure 3);
//   - a terminal adapter that integrates a simulated legacy WIP
//     (work-in-process) system whose only interface is a screen-oriented
//     terminal — the adapter "acts as a virtual user to the terminal
//     interface".
package adapter

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"infobus/internal/mop"
)

// NewsTypes holds the Story class hierarchy of the trading-floor example.
type NewsTypes struct {
	Group   *mop.Type // IndustryGroup{code, weight}
	Story   *mop.Type // common supertype
	DJ      *mop.Type // DowJonesStory : Story
	Reuters *mop.Type // ReutersStory : Story
}

// DefineNewsTypes builds and registers the Story hierarchy in a registry.
// Calling it twice with the same registry returns the registered types.
func DefineNewsTypes(reg *mop.Registry) (NewsTypes, error) {
	if reg.Has("Story") {
		story, err := reg.Lookup("Story")
		if err != nil {
			return NewsTypes{}, err
		}
		group, err := reg.Lookup("IndustryGroup")
		if err != nil {
			return NewsTypes{}, err
		}
		dj, err := reg.Lookup("DowJonesStory")
		if err != nil {
			return NewsTypes{}, err
		}
		reuters, err := reg.Lookup("ReutersStory")
		if err != nil {
			return NewsTypes{}, err
		}
		return NewsTypes{Group: group, Story: story, DJ: dj, Reuters: reuters}, nil
	}
	group := mop.MustNewClass("IndustryGroup", nil, []mop.Attr{
		{Name: "code", Type: mop.String},
		{Name: "weight", Type: mop.Float},
	}, nil)
	story := mop.MustNewClass("Story", nil, []mop.Attr{
		{Name: "headline", Type: mop.String},
		{Name: "body", Type: mop.String},
		{Name: "category", Type: mop.String},
		{Name: "ticker", Type: mop.String},
		{Name: "sources", Type: mop.ListOf(mop.String)},
		{Name: "countryCodes", Type: mop.ListOf(mop.String)},
		{Name: "groups", Type: mop.ListOf(group)},
		{Name: "published", Type: mop.Time},
		{Name: "urgent", Type: mop.Bool},
	}, []mop.Operation{
		{Name: "summary", Result: mop.String},
	})
	dj := mop.MustNewClass("DowJonesStory", []*mop.Type{story}, []mop.Attr{
		{Name: "djCode", Type: mop.String},
	}, nil)
	reuters := mop.MustNewClass("ReutersStory", []*mop.Type{story}, []mop.Attr{
		{Name: "slug", Type: mop.String},
		{Name: "priority", Type: mop.Int},
	}, nil)
	for _, t := range []*mop.Type{group, story, dj, reuters} {
		if err := reg.Register(t); err != nil {
			return NewsTypes{}, err
		}
	}
	return NewsTypes{Group: group, Story: story, DJ: dj, Reuters: reuters}, nil
}

// PropertyType is the general Property concept of §5.2 (after the OMG
// Object Services nomenclature): "a name-value pair that can be
// dynamically defined and associated with an object". Ref carries the
// headline of the story a property annotates.
var PropertyType = mop.MustNewClass("Property", nil, []mop.Attr{
	{Name: "name", Type: mop.String},
	{Name: "ref", Type: mop.String},
	{Name: "value", Type: mop.Any},
}, nil)

// Parse errors.
var (
	ErrBadFeedData = errors.New("adapter: malformed feed data")
)

// StorySubject derives the publication subject from a parsed story object
// ("news.equity.gmc").
func StorySubject(story *mop.Object) (string, error) {
	cat, err := story.Get("category")
	if err != nil {
		return "", err
	}
	tick, err := story.Get("ticker")
	if err != nil {
		return "", err
	}
	c, _ := cat.(string)
	tk, _ := tick.(string)
	if c == "" || tk == "" {
		return "", fmt.Errorf("story lacks category/ticker: %w", ErrBadFeedData)
	}
	return "news." + c + "." + strings.ToLower(tk), nil
}

// ---------------------------------------------------------------------------
// Dow-Jones-like format

// ParseDJ parses one Dow-Jones-format story (see feeds.DJRaw) into a
// DowJonesStory object.
func ParseDJ(raw string, types NewsTypes) (*mop.Object, error) {
	lines := strings.Split(raw, "\n")
	obj := mop.MustNew(types.DJ)
	inText := false
	var body []string
	sawStart, sawEnd := false, false
	for _, line := range lines {
		if inText {
			if line == ".END" {
				inText = false
				sawEnd = true
				continue
			}
			body = append(body, line)
			continue
		}
		switch {
		case line == ".START":
			sawStart = true
		case line == ".TEXT":
			inText = true
		case line == ".END":
			sawEnd = true
		case line == "":
		case strings.HasPrefix(line, "."):
			key, val, _ := strings.Cut(line[1:], " ")
			if err := djField(obj, types, key, val); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unexpected line %q: %w", line, ErrBadFeedData)
		}
	}
	if !sawStart || !sawEnd {
		return nil, fmt.Errorf("missing .START/.END framing: %w", ErrBadFeedData)
	}
	obj.MustSet("body", strings.Join(body, "\n"))
	return obj, nil
}

func djField(obj *mop.Object, types NewsTypes, key, val string) error {
	switch key {
	case "CODE":
		obj.MustSet("djCode", val)
		obj.MustSet("ticker", val)
	case "CAT":
		obj.MustSet("category", val)
	case "HEAD":
		obj.MustSet("headline", val)
	case "TIME":
		ts, err := time.Parse(time.RFC3339, val)
		if err != nil {
			return fmt.Errorf(".TIME %q: %w", val, ErrBadFeedData)
		}
		obj.MustSet("published", ts)
	case "URG":
		obj.MustSet("urgent", val == "1")
	case "IND":
		var groups mop.List
		if val != "" {
			for _, part := range strings.Split(val, ",") {
				code, w, ok := strings.Cut(part, ":")
				if !ok {
					return fmt.Errorf(".IND %q: %w", val, ErrBadFeedData)
				}
				weight, err := strconv.ParseFloat(w, 64)
				if err != nil {
					return fmt.Errorf(".IND weight %q: %w", w, ErrBadFeedData)
				}
				g := mop.MustNew(types.Group).MustSet("code", code).MustSet("weight", weight)
				groups = append(groups, g)
			}
		}
		obj.MustSet("groups", groups)
	case "SRC":
		obj.MustSet("sources", splitList(val, ";"))
	case "CTY":
		obj.MustSet("countryCodes", splitList(val, ","))
	default:
		return fmt.Errorf("unknown directive .%s: %w", key, ErrBadFeedData)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reuters-like format

// ParseReuters parses one Reuters-format story (see feeds.ReutersRaw) into
// a ReutersStory object.
func ParseReuters(raw string, types NewsTypes) (*mop.Object, error) {
	lines := strings.Split(raw, "\n")
	obj := mop.MustNew(types.Reuters)
	inText := false
	var body []string
	framed := false
	closed := false
	for _, line := range lines {
		if inText {
			if line == "NNNN" {
				inText = false
				closed = true
				continue
			}
			body = append(body, line)
			continue
		}
		switch {
		case line == "ZCZC":
			framed = true
		case line == "TEXT":
			inText = true
		case line == "NNNN":
			closed = true
		case line == "":
		default:
			key, val, ok := strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("field line %q: %w", line, ErrBadFeedData)
			}
			if err := reutersField(obj, types, key, val); err != nil {
				return nil, err
			}
		}
	}
	if !framed || !closed {
		return nil, fmt.Errorf("missing ZCZC/NNNN framing: %w", ErrBadFeedData)
	}
	obj.MustSet("body", strings.Join(body, "\n"))
	return obj, nil
}

func reutersField(obj *mop.Object, types NewsTypes, key, val string) error {
	switch key {
	case "SLUG":
		obj.MustSet("slug", val)
	case "PRIORITY":
		p, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("PRIORITY %q: %w", val, ErrBadFeedData)
		}
		obj.MustSet("priority", p)
		obj.MustSet("urgent", p <= 1)
	case "HEADLINE":
		obj.MustSet("headline", val)
	case "CATEGORY":
		obj.MustSet("category", val)
	case "TICKER":
		obj.MustSet("ticker", val)
	case "TIMESTAMP":
		sec, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("TIMESTAMP %q: %w", val, ErrBadFeedData)
		}
		obj.MustSet("published", time.Unix(sec, 0).UTC())
	case "SOURCES":
		obj.MustSet("sources", splitList(val, " "))
	case "COUNTRIES":
		obj.MustSet("countryCodes", splitList(val, " "))
	case "INDUSTRIES":
		var groups mop.List
		if val != "" {
			for _, part := range strings.Fields(val) {
				code, w, ok := strings.Cut(part, "=")
				if !ok {
					return fmt.Errorf("INDUSTRIES %q: %w", val, ErrBadFeedData)
				}
				weight, err := strconv.ParseFloat(w, 64)
				if err != nil {
					return fmt.Errorf("INDUSTRIES weight %q: %w", w, ErrBadFeedData)
				}
				g := mop.MustNew(types.Group).MustSet("code", code).MustSet("weight", weight)
				groups = append(groups, g)
			}
		}
		obj.MustSet("groups", groups)
	default:
		return fmt.Errorf("unknown field %s: %w", key, ErrBadFeedData)
	}
	return nil
}

func splitList(val, sep string) mop.List {
	var out mop.List
	for _, s := range strings.Split(val, sep) {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}
