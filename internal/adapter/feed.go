package adapter

import (
	"fmt"
	"sync"

	"infobus/internal/core"
	"infobus/internal/mop"
)

// ParseFunc converts one raw vendor chunk into a Story object.
type ParseFunc func(raw string, types NewsTypes) (*mop.Object, error)

// FeedAdapter pumps a raw vendor feed onto the bus: parse each chunk into
// the vendor's Story subtype and publish it under the subject of its
// primary topic. This is the left edge of Figure 3.
type FeedAdapter struct {
	name  string
	bus   *core.Bus
	types NewsTypes
	parse ParseFunc

	mu        sync.Mutex
	published uint64
	rejected  uint64
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewFeedAdapter creates an adapter that consumes raw chunks from in and
// publishes parsed stories. It runs until in closes or Close is called.
func NewFeedAdapter(name string, bus *core.Bus, types NewsTypes, parse ParseFunc, in <-chan string) *FeedAdapter {
	fa := &FeedAdapter{
		name:  name,
		bus:   bus,
		types: types,
		parse: parse,
		done:  make(chan struct{}),
	}
	fa.wg.Add(1)
	go fa.pump(in)
	return fa
}

// Name returns the adapter's label.
func (fa *FeedAdapter) Name() string { return fa.name }

// Published returns how many stories were parsed and published.
func (fa *FeedAdapter) Published() uint64 {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return fa.published
}

// Rejected returns how many raw chunks failed to parse or publish.
func (fa *FeedAdapter) Rejected() uint64 {
	fa.mu.Lock()
	defer fa.mu.Unlock()
	return fa.rejected
}

// Close stops the adapter.
func (fa *FeedAdapter) Close() {
	fa.mu.Lock()
	if fa.closed {
		fa.mu.Unlock()
		return
	}
	fa.closed = true
	fa.mu.Unlock()
	close(fa.done)
	fa.wg.Wait()
}

// Wait blocks until the input channel has been drained (closed and
// processed), for batch-style runs.
func (fa *FeedAdapter) Wait() { fa.wg.Wait() }

func (fa *FeedAdapter) pump(in <-chan string) {
	defer fa.wg.Done()
	for {
		select {
		case <-fa.done:
			return
		case raw, ok := <-in:
			if !ok {
				return
			}
			if err := fa.handle(raw); err != nil {
				fa.mu.Lock()
				fa.rejected++
				fa.mu.Unlock()
			} else {
				fa.mu.Lock()
				fa.published++
				fa.mu.Unlock()
			}
		}
	}
}

func (fa *FeedAdapter) handle(raw string) error {
	story, err := fa.parse(raw, fa.types)
	if err != nil {
		return err
	}
	subj, err := StorySubject(story)
	if err != nil {
		return err
	}
	if err := fa.bus.Publish(subj, story); err != nil {
		return fmt.Errorf("adapter %s: publishing: %w", fa.name, err)
	}
	return nil
}
