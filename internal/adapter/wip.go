package adapter

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"infobus/internal/core"
	"infobus/internal/mop"
)

// This file integrates a legacy Work-In-Process system, following the
// paper's factory-floor war story: "the existing WIP system is written in
// Cobol, and there is only a primitive terminal interface. The adapter
// must act as a virtual user to the terminal interface."
//
// LegacyWIP simulates that system: an in-memory lot tracker reachable only
// through a screen-oriented terminal session (menus, prompts, fixed
// response lines). WIPAdapter subscribes to move commands on the bus,
// drives a terminal session like a human operator would, reads the
// confirmation screens back, and publishes resulting lot status objects.

// Bus classes for the WIP integration.
var (
	// WIPMoveType commands a lot move: published by factory applications.
	WIPMoveType = mop.MustNewClass("WIPMove", nil, []mop.Attr{
		{Name: "lot", Type: mop.String},
		{Name: "station", Type: mop.String},
	}, nil)
	// WIPStatusType reports a lot's location after a move: published by
	// the adapter from the legacy system's own answers.
	WIPStatusType = mop.MustNewClass("WIPStatus", nil, []mop.Attr{
		{Name: "lot", Type: mop.String},
		{Name: "station", Type: mop.String},
		{Name: "moves", Type: mop.Int},
	}, nil)
)

// ---------------------------------------------------------------------------
// The legacy system

// LegacyWIP is the simulated Cobol-era WIP tracker. All access goes
// through terminal sessions; there is deliberately no richer API.
type LegacyWIP struct {
	mu   sync.Mutex
	lots map[string]*lotRecord
}

type lotRecord struct {
	station string
	moves   int64
}

// NewLegacyWIP boots the legacy system with an empty lot database.
func NewLegacyWIP() *LegacyWIP {
	return &LegacyWIP{lots: make(map[string]*lotRecord)}
}

// screenState is the terminal session state machine.
type screenState int

const (
	scrMain screenState = iota
	scrMoveLot
	scrMoveStation
	scrMoveConfirm
	scrQueryLot
	scrQueryResult
	scrLoggedOff
)

// TerminalSession is one operator session against the legacy system.
type TerminalSession struct {
	sys     *LegacyWIP
	state   screenState
	pendLot string
	last    string
}

// NewSession opens a terminal session showing the main menu.
func (w *LegacyWIP) NewSession() *TerminalSession {
	s := &TerminalSession{sys: w, state: scrMain}
	s.last = s.render("")
	return s
}

// Screen returns the currently displayed screen text.
func (s *TerminalSession) Screen() string { return s.last }

// SendLine types one input line (as a virtual user) and returns the next
// screen.
func (s *TerminalSession) SendLine(input string) string {
	input = strings.TrimSpace(input)
	msg := ""
	switch s.state {
	case scrMain:
		switch input {
		case "1":
			s.state = scrMoveLot
		case "2":
			s.state = scrQueryLot
		case "3":
			s.state = scrLoggedOff
		default:
			msg = "INVALID SELECTION"
		}
	case scrMoveLot:
		if input == "" {
			msg = "LOT ID REQUIRED"
		} else {
			s.pendLot = input
			s.state = scrMoveStation
		}
	case scrMoveStation:
		if input == "" {
			msg = "STATION REQUIRED"
		} else {
			s.sys.mu.Lock()
			rec := s.sys.lots[s.pendLot]
			if rec == nil {
				rec = &lotRecord{}
				s.sys.lots[s.pendLot] = rec
			}
			rec.station = strings.ToUpper(input)
			rec.moves++
			msg = fmt.Sprintf("LOT %s MOVED TO %s - OK", strings.ToUpper(s.pendLot), rec.station)
			s.sys.mu.Unlock()
			s.state = scrMoveConfirm
		}
	case scrMoveConfirm:
		s.state = scrMain
	case scrQueryLot:
		s.sys.mu.Lock()
		rec := s.sys.lots[input]
		if rec == nil {
			msg = fmt.Sprintf("LOT %s NOT FOUND", strings.ToUpper(input))
		} else {
			msg = fmt.Sprintf("LOT %s AT %s MOVES %d", strings.ToUpper(input), rec.station, rec.moves)
		}
		s.sys.mu.Unlock()
		s.state = scrQueryResult
	case scrQueryResult:
		s.state = scrMain
	case scrLoggedOff:
		// Dead session; screen unchanged.
	}
	s.last = s.render(msg)
	return s.last
}

func (s *TerminalSession) render(msg string) string {
	var b strings.Builder
	b.WriteString("==== ACME WIP TRACKING V2.3 ====\n")
	if msg != "" {
		b.WriteString(msg + "\n")
	}
	switch s.state {
	case scrMain:
		b.WriteString("1. MOVE LOT\n2. QUERY LOT\n3. LOGOFF\nSELECT:")
	case scrMoveLot:
		b.WriteString("ENTER LOT ID:")
	case scrMoveStation:
		b.WriteString("ENTER STATION:")
	case scrMoveConfirm, scrQueryResult:
		b.WriteString("PRESS ENTER")
	case scrQueryLot:
		b.WriteString("ENTER LOT ID:")
	case scrLoggedOff:
		b.WriteString("SESSION ENDED")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// The adapter (virtual user)

// WIPAdapter bridges the bus and the legacy terminal interface.
type WIPAdapter struct {
	bus     *core.Bus
	session *TerminalSession
	sub     *core.Subscription

	mu     sync.Mutex
	moves  uint64
	errs   uint64
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// WIP subject conventions.
const (
	WIPMoveSubject   = "fab5.wip.move"
	WIPStatusSubject = "fab5.wip.status" // + "." + lot
)

// Adapter errors.
var ErrLegacyRejected = errors.New("adapter: legacy system rejected the operation")

// NewWIPAdapter attaches the adapter: it subscribes to move commands and
// drives the given legacy system through a fresh terminal session.
func NewWIPAdapter(bus *core.Bus, legacy *LegacyWIP) (*WIPAdapter, error) {
	sub, err := bus.Subscribe(WIPMoveSubject)
	if err != nil {
		return nil, err
	}
	if err := bus.Registry().Register(WIPMoveType); err != nil {
		return nil, err
	}
	if err := bus.Registry().Register(WIPStatusType); err != nil {
		return nil, err
	}
	wa := &WIPAdapter{
		bus:     bus,
		session: legacy.NewSession(),
		sub:     sub,
		done:    make(chan struct{}),
	}
	wa.wg.Add(1)
	go wa.loop()
	return wa, nil
}

// Moves returns how many lot moves have been applied to the legacy system.
func (wa *WIPAdapter) Moves() uint64 {
	wa.mu.Lock()
	defer wa.mu.Unlock()
	return wa.moves
}

// Errors returns how many commands failed translation.
func (wa *WIPAdapter) Errors() uint64 {
	wa.mu.Lock()
	defer wa.mu.Unlock()
	return wa.errs
}

// Close detaches the adapter.
func (wa *WIPAdapter) Close() {
	wa.mu.Lock()
	if wa.closed {
		wa.mu.Unlock()
		return
	}
	wa.closed = true
	wa.mu.Unlock()
	close(wa.done)
	wa.sub.Cancel()
	wa.wg.Wait()
}

func (wa *WIPAdapter) loop() {
	defer wa.wg.Done()
	for {
		select {
		case <-wa.done:
			return
		case ev, ok := <-wa.sub.C:
			if !ok {
				return
			}
			if err := wa.applyMove(ev.Value); err != nil {
				wa.mu.Lock()
				wa.errs++
				wa.mu.Unlock()
				continue
			}
			wa.mu.Lock()
			wa.moves++
			wa.mu.Unlock()
		}
	}
}

// applyMove drives the terminal like a human operator: menu selection, lot
// id, station, read the confirmation, then runs the query screen to read
// authoritative state back and publishes it.
func (wa *WIPAdapter) applyMove(v mop.Value) error {
	cmd, ok := v.(*mop.Object)
	if !ok || !cmd.Type().IsSubtypeOf(WIPMoveType) && cmd.Type().Name() != WIPMoveType.Name() {
		return fmt.Errorf("unexpected value on %s: %w", WIPMoveSubject, ErrBadFeedData)
	}
	lotV, err := cmd.Get("lot")
	if err != nil {
		return err
	}
	stationV, err := cmd.Get("station")
	if err != nil {
		return err
	}
	lot, _ := lotV.(string)
	station, _ := stationV.(string)
	if lot == "" || station == "" {
		return fmt.Errorf("empty lot/station: %w", ErrBadFeedData)
	}

	// Drive the move screens.
	wa.session.SendLine("1")
	wa.session.SendLine(lot)
	screen := wa.session.SendLine(station)
	if !strings.Contains(screen, "- OK") {
		return fmt.Errorf("move screen said %q: %w", firstLine(screen), ErrLegacyRejected)
	}
	wa.session.SendLine("") // acknowledge confirmation

	// Read back through the query screen (the legacy system is the source
	// of truth) and publish the resulting status object.
	wa.session.SendLine("2")
	screen = wa.session.SendLine(lot)
	wa.session.SendLine("") // back to menu
	status, err := parseQueryScreen(screen)
	if err != nil {
		return err
	}
	return wa.bus.Publish(WIPStatusSubject+"."+strings.ToLower(lot), status)
}

// parseQueryScreen scrapes "LOT L42 AT LITHO8 MOVES 3" into a WIPStatus.
func parseQueryScreen(screen string) (*mop.Object, error) {
	for _, line := range strings.Split(screen, "\n") {
		if !strings.HasPrefix(line, "LOT ") {
			continue
		}
		if strings.Contains(line, "NOT FOUND") {
			return nil, fmt.Errorf("%s: %w", line, ErrLegacyRejected)
		}
		fields := strings.Fields(line)
		// LOT <id> AT <station> MOVES <n>
		if len(fields) != 6 || fields[2] != "AT" || fields[4] != "MOVES" {
			return nil, fmt.Errorf("unparseable screen line %q: %w", line, ErrBadFeedData)
		}
		moves, err := strconv.ParseInt(fields[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("moves %q: %w", fields[5], ErrBadFeedData)
		}
		return mop.MustNew(WIPStatusType).
			MustSet("lot", fields[1]).
			MustSet("station", fields[3]).
			MustSet("moves", moves), nil
	}
	return nil, fmt.Errorf("no LOT line on screen: %w", ErrBadFeedData)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
