package transport

import (
	"fmt"
	"net"
	"strings"
	"sync"
)

// StaticUDPSegment is a broadcast domain over real UDP sockets with a
// statically configured peer list, for running bus hosts in separate OS
// processes (cmd/busd, cmd/ibmon, cmd/ibrouter, cmd/ibrepo): each process
// knows the listen addresses of the others, and Broadcast is a unicast
// fan-out to that list — the strategy the paper's routers use where
// Ethernet broadcast is unavailable.
//
// The first NewEndpoint call binds the configured listen address (the
// identity other processes know); subsequent endpoints (RMI channels,
// routers) bind ephemeral ports but share the peer list.
type StaticUDPSegment struct {
	listen string
	peers  []string // "udp:host:port" destination addresses

	mu        sync.Mutex
	boundMain bool
	closed    bool
	eps       []*staticUDPEndpoint
}

// NewStaticUDPSegment creates a segment that listens on listen
// ("host:port") and broadcasts to peers (each "host:port").
func NewStaticUDPSegment(listen string, peers []string) *StaticUDPSegment {
	s := &StaticUDPSegment{listen: listen}
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.HasPrefix(p, "udp:") {
			p = "udp:" + p
		}
		s.peers = append(s.peers, p)
	}
	return s
}

// NewEndpoint binds a socket: the segment's listen address for the first
// endpoint, ephemeral ports afterwards.
func (s *StaticUDPSegment) NewEndpoint(name string) (Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	bindAddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
	if !s.boundMain && s.listen != "" {
		a, err := net.ResolveUDPAddr("udp4", s.listen)
		if err != nil {
			return nil, fmt.Errorf("transport: listen address %q: %w", s.listen, ErrBadAddr)
		}
		bindAddr = a
	}
	conn, err := net.ListenUDP("udp4", bindAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: binding %v: %w", bindAddr, err)
	}
	s.boundMain = true
	ep := &staticUDPEndpoint{
		seg:  s,
		name: name,
		conn: conn,
		out:  make(chan Datagram, 1024),
		done: make(chan struct{}),
	}
	s.eps = append(s.eps, ep)
	go ep.readLoop()
	return ep, nil
}

// Close shuts down every endpoint created on the segment.
func (s *StaticUDPSegment) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	eps := append([]*staticUDPEndpoint(nil), s.eps...)
	s.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

type staticUDPEndpoint struct {
	seg       *StaticUDPSegment
	name      string
	conn      *net.UDPConn
	out       chan Datagram
	done      chan struct{}
	closeOnce sync.Once
}

func (e *staticUDPEndpoint) Addr() string { return "udp:" + e.conn.LocalAddr().String() }

func (e *staticUDPEndpoint) Send(addr string, payload []byte) error {
	if len(payload) > maxUDPDatagram {
		return fmt.Errorf("%d bytes: %w", len(payload), ErrOversize)
	}
	host, ok := cutPrefix(addr, "udp:")
	if !ok {
		return fmt.Errorf("%q: %w", addr, ErrBadAddr)
	}
	udpAddr, err := net.ResolveUDPAddr("udp4", host)
	if err != nil {
		return fmt.Errorf("%q: %w", addr, ErrBadAddr)
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	_, err = e.conn.WriteToUDP(payload, udpAddr)
	return err
}

func (e *staticUDPEndpoint) Broadcast(payload []byte) error {
	var firstErr error
	for _, peer := range e.seg.peers {
		if err := e.Send(peer, payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (e *staticUDPEndpoint) Recv() <-chan Datagram { return e.out }

func (e *staticUDPEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		_ = e.conn.Close()
	})
	return nil
}

func (e *staticUDPEndpoint) readLoop() {
	defer close(e.out)
	buf := make([]byte, maxUDPDatagram)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		payload := append([]byte(nil), buf[:n]...)
		select {
		case e.out <- Datagram{From: "udp:" + from.String(), Payload: payload}:
		case <-e.done:
			return
		default: // full queue: drop like a kernel socket buffer
		}
	}
}
