package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// freePorts grabs n distinct free localhost UDP ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		addrs = append(addrs, c.LocalAddr().String())
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return addrs
}

func TestStaticUDPCrossSegment(t *testing.T) {
	ports := freePorts(t, 2)
	// Two independent segments, as two processes would configure them.
	segA := NewStaticUDPSegment(ports[0], []string{ports[1]})
	defer segA.Close()
	segB := NewStaticUDPSegment(ports[1], []string{ports[0]})
	defer segB.Close()

	a, err := segA.NewEndpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := segB.NewEndpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() != "udp:"+ports[0] {
		t.Errorf("main endpoint addr = %s, want %s", a.Addr(), ports[0])
	}
	// Broadcast from A reaches B's main endpoint.
	if err := a.Broadcast([]byte("cross")); err != nil {
		t.Fatal(err)
	}
	d := recvDatagram(t, b, 5*time.Second)
	if string(d.Payload) != "cross" {
		t.Errorf("payload = %q", d.Payload)
	}
	// Unicast reply to the carried source address.
	if err := b.Send(d.From, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	if d := recvDatagram(t, a, 5*time.Second); string(d.Payload) != "reply" {
		t.Errorf("reply payload = %q", d.Payload)
	}
}

func TestStaticUDPSecondaryEndpointsEphemeral(t *testing.T) {
	ports := freePorts(t, 2)
	seg := NewStaticUDPSegment(ports[0], []string{ports[1]})
	defer seg.Close()
	main, err := seg.NewEndpoint("main")
	if err != nil {
		t.Fatal(err)
	}
	second, err := seg.NewEndpoint("rmi-channel")
	if err != nil {
		t.Fatal(err)
	}
	if second.Addr() == main.Addr() {
		t.Error("secondary endpoint must bind an ephemeral port")
	}
	// Both can talk to each other directly.
	if err := second.Send(main.Addr(), []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if d := recvDatagram(t, main, 5*time.Second); string(d.Payload) != "hi" {
		t.Errorf("payload = %q", d.Payload)
	}
}

func TestStaticUDPErrors(t *testing.T) {
	ports := freePorts(t, 1)
	seg := NewStaticUDPSegment("not a valid address", nil)
	if _, err := seg.NewEndpoint("x"); !errors.Is(err, ErrBadAddr) {
		t.Errorf("bad listen address error = %v", err)
	}
	seg2 := NewStaticUDPSegment(ports[0], []string{" ", ""})
	ep, err := seg2.NewEndpoint("x")
	if err != nil {
		t.Fatal(err)
	}
	// Empty peer entries are skipped; broadcast to nobody succeeds.
	if err := ep.Broadcast([]byte("void")); err != nil {
		t.Errorf("broadcast to empty peer list = %v", err)
	}
	if err := ep.Send("no-prefix", []byte("x")); !errors.Is(err, ErrBadAddr) {
		t.Errorf("send bad addr = %v", err)
	}
	if err := ep.Send("udp:���", []byte("x")); !errors.Is(err, ErrBadAddr) {
		t.Errorf("send unresolvable = %v", err)
	}
	if err := ep.Send("udp:127.0.0.1:9", make([]byte, 70_000)); !errors.Is(err, ErrOversize) {
		t.Errorf("oversize = %v", err)
	}
	if err := seg2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := seg2.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
	if _, err := seg2.NewEndpoint("late"); !errors.Is(err, ErrClosed) {
		t.Errorf("NewEndpoint after close = %v", err)
	}
	select {
	case _, ok := <-ep.Recv():
		if ok {
			t.Error("datagram after close")
		}
	case <-time.After(time.Second):
		t.Error("recv channel not closed")
	}
}

func TestStaticUDPPeerNormalisation(t *testing.T) {
	seg := NewStaticUDPSegment("", []string{"127.0.0.1:9001", "udp:127.0.0.1:9002"})
	if len(seg.peers) != 2 {
		t.Fatalf("peers = %v", seg.peers)
	}
	for i, want := range []string{"udp:127.0.0.1:9001", "udp:127.0.0.1:9002"} {
		if seg.peers[i] != want {
			t.Errorf("peer %d = %q, want %q", i, seg.peers[i], want)
		}
	}
}
