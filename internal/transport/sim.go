package transport

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"infobus/internal/netsim"
)

// SimSegment adapts a netsim.Network to the Segment interface. Addresses
// have the form "sim:<node-id>".
type SimSegment struct {
	net *netsim.Network

	mu     sync.Mutex
	closed bool
	eps    []*simEndpoint
}

// NewSimSegment creates a segment over a fresh simulated network with the
// given configuration.
func NewSimSegment(cfg netsim.Config) *SimSegment {
	return &SimSegment{net: netsim.NewNetwork(cfg)}
}

// Network exposes the underlying simulator for fault injection (partitions,
// background load) and statistics in tests and benchmarks.
func (s *SimSegment) Network() *netsim.Network { return s.net }

// NewEndpoint attaches a simulated host.
func (s *SimSegment) NewEndpoint(name string) (Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	node := s.net.NewNode(name)
	ep := &simEndpoint{node: node, out: make(chan Datagram, 1024), done: make(chan struct{})}
	go ep.pump()
	s.eps = append(s.eps, ep)
	return ep, nil
}

// Close shuts down the simulated network.
func (s *SimSegment) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.net.Close()
	return nil
}

type simEndpoint struct {
	node      *netsim.Node
	out       chan Datagram
	done      chan struct{}
	closeOnce sync.Once
}

func simAddr(id netsim.NodeID) string { return "sim:" + strconv.Itoa(int(id)) }

func parseSimAddr(addr string) (netsim.NodeID, error) {
	rest, ok := strings.CutPrefix(addr, "sim:")
	if !ok {
		return 0, fmt.Errorf("%q: %w", addr, ErrBadAddr)
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		return 0, fmt.Errorf("%q: %w", addr, ErrBadAddr)
	}
	return netsim.NodeID(id), nil
}

func (e *simEndpoint) Addr() string { return simAddr(e.node.ID()) }

func (e *simEndpoint) Send(addr string, payload []byte) error {
	id, err := parseSimAddr(addr)
	if err != nil {
		return err
	}
	return mapSimErr(e.node.Send(id, payload))
}

func (e *simEndpoint) Broadcast(payload []byte) error {
	return mapSimErr(e.node.SendBroadcast(payload))
}

func (e *simEndpoint) Recv() <-chan Datagram { return e.out }

func (e *simEndpoint) Close() error {
	e.closeOnce.Do(func() { close(e.done) })
	return nil
}

// pump converts netsim packets into Datagrams.
func (e *simEndpoint) pump() {
	defer close(e.out)
	for {
		select {
		case <-e.done:
			return
		case pkt, ok := <-e.node.Recv():
			if !ok {
				return
			}
			select {
			case e.out <- Datagram{From: simAddr(pkt.From), Payload: pkt.Payload}:
			case <-e.done:
				return
			}
		}
	}
}

func mapSimErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, netsim.ErrOversize):
		return fmt.Errorf("%v: %w", err, ErrOversize)
	case errors.Is(err, netsim.ErrClosed):
		return ErrClosed
	default:
		return err
	}
}
