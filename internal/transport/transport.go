// Package transport abstracts the unreliable datagram layer beneath the
// Information Bus. The paper's implementation sends UDP packets over
// Ethernet broadcast; this package provides that datagram service behind an
// interface with two implementations:
//
//   - Segment backed by the netsim simulated Ethernet (deterministic tests
//     and the appendix benchmarks), and
//   - Segment backed by real UDP sockets on the loopback interface, which
//     exercises the identical protocol stack over the kernel's network path
//     (broadcast emulated by unicast fan-out, as the paper's information
//     routers do on networks without broadcast).
//
// Everything above this layer — the reliable delivery protocol, the
// per-host daemon, the bus — is transport-agnostic.
package transport

import (
	"errors"
)

// Datagram is one received unreliable datagram.
type Datagram struct {
	// From is the sender's point-to-point address.
	From string
	// Payload is the datagram body. The receiver owns it.
	Payload []byte
}

// Endpoint is one host's attachment to a network segment. Datagrams may be
// lost, duplicated, reordered, or dropped on overflow; they are never
// corrupted (the model of §2: fail-stop nodes, lossy network).
type Endpoint interface {
	// Addr returns this endpoint's point-to-point address, usable as a
	// Send destination from any endpoint on the same segment.
	Addr() string
	// Send transmits a unicast datagram to addr.
	Send(addr string, payload []byte) error
	// Broadcast transmits a datagram to every other endpoint on the
	// segment. The sender does not receive its own broadcasts.
	Broadcast(payload []byte) error
	// Recv returns the endpoint's receive channel. It is closed when the
	// endpoint (or the segment) closes.
	Recv() <-chan Datagram
	// Close detaches the endpoint.
	Close() error
}

// Segment is a broadcast domain on which endpoints can be created: one
// Ethernet subnet in the paper's deployment. Information routers bridge
// segments (§3.1).
type Segment interface {
	// NewEndpoint attaches a new host interface to the segment. The name
	// is informational (host names in monitoring output).
	NewEndpoint(name string) (Endpoint, error)
	// Close shuts down the segment and all of its endpoints.
	Close() error
}

// Common transport errors.
var (
	ErrClosed   = errors.New("transport: closed")
	ErrBadAddr  = errors.New("transport: bad or unknown address")
	ErrOversize = errors.New("transport: datagram too large")
)
