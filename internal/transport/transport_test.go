package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"infobus/internal/netsim"
)

func fastSimSegment() *SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 2000
	return NewSimSegment(cfg)
}

// segments returns both implementations so every test runs against each.
func segments(t *testing.T) map[string]Segment {
	t.Helper()
	return map[string]Segment{
		"sim": fastSimSegment(),
		"udp": NewUDPSegment(),
	}
}

func recvDatagram(t *testing.T, ep Endpoint, within time.Duration) Datagram {
	t.Helper()
	select {
	case d, ok := <-ep.Recv():
		if !ok {
			t.Fatal("receive channel closed")
		}
		return d
	case <-time.After(within):
		t.Fatal("timed out waiting for datagram")
		return Datagram{}
	}
}

func TestUnicastBothTransports(t *testing.T) {
	for name, seg := range segments(t) {
		t.Run(name, func(t *testing.T) {
			defer seg.Close()
			a, err := seg.NewEndpoint("a")
			if err != nil {
				t.Fatal(err)
			}
			b, err := seg.NewEndpoint("b")
			if err != nil {
				t.Fatal(err)
			}
			if a.Addr() == b.Addr() {
				t.Fatal("addresses must be distinct")
			}
			if err := a.Send(b.Addr(), []byte("ping")); err != nil {
				t.Fatal(err)
			}
			d := recvDatagram(t, b, 3*time.Second)
			if string(d.Payload) != "ping" {
				t.Errorf("payload = %q", d.Payload)
			}
			if d.From != a.Addr() {
				t.Errorf("from = %q, want %q", d.From, a.Addr())
			}
			// Reply using the carried source address (the point-to-point
			// channel RMI relies on).
			if err := b.Send(d.From, []byte("pong")); err != nil {
				t.Fatal(err)
			}
			if d := recvDatagram(t, a, 3*time.Second); string(d.Payload) != "pong" {
				t.Errorf("reply payload = %q", d.Payload)
			}
		})
	}
}

func TestBroadcastBothTransports(t *testing.T) {
	for name, seg := range segments(t) {
		t.Run(name, func(t *testing.T) {
			defer seg.Close()
			var eps []Endpoint
			for i := 0; i < 5; i++ {
				ep, err := seg.NewEndpoint(fmt.Sprintf("n%d", i))
				if err != nil {
					t.Fatal(err)
				}
				eps = append(eps, ep)
			}
			if err := eps[0].Broadcast([]byte("all")); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(eps); i++ {
				d := recvDatagram(t, eps[i], 3*time.Second)
				if string(d.Payload) != "all" {
					t.Errorf("endpoint %d payload = %q", i, d.Payload)
				}
			}
			select {
			case d := <-eps[0].Recv():
				t.Errorf("sender received own broadcast: %+v", d)
			case <-time.After(30 * time.Millisecond):
			}
		})
	}
}

func TestBadAddress(t *testing.T) {
	for name, seg := range segments(t) {
		t.Run(name, func(t *testing.T) {
			defer seg.Close()
			a, err := seg.NewEndpoint("a")
			if err != nil {
				t.Fatal(err)
			}
			if err := a.Send("bogus", []byte("x")); !errors.Is(err, ErrBadAddr) {
				t.Errorf("bad addr error = %v", err)
			}
		})
	}
}

func TestOversizeBothTransports(t *testing.T) {
	for name, seg := range segments(t) {
		t.Run(name, func(t *testing.T) {
			defer seg.Close()
			a, _ := seg.NewEndpoint("a")
			b, _ := seg.NewEndpoint("b")
			err := a.Send(b.Addr(), make([]byte, 70_000))
			if !errors.Is(err, ErrOversize) {
				t.Errorf("oversize error = %v", err)
			}
		})
	}
}

func TestEndpointCloseStopsRecv(t *testing.T) {
	for name, seg := range segments(t) {
		t.Run(name, func(t *testing.T) {
			defer seg.Close()
			a, _ := seg.NewEndpoint("a")
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if err := a.Close(); err != nil {
				t.Errorf("second close: %v", err)
			}
			select {
			case _, ok := <-a.Recv():
				if ok {
					t.Error("received datagram after close")
				}
			case <-time.After(time.Second):
				t.Error("receive channel not closed")
			}
		})
	}
}

func TestSegmentCloseClosesEndpoints(t *testing.T) {
	for name, seg := range segments(t) {
		t.Run(name, func(t *testing.T) {
			a, _ := seg.NewEndpoint("a")
			if err := seg.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := seg.NewEndpoint("late"); !errors.Is(err, ErrClosed) {
				t.Errorf("NewEndpoint after close error = %v", err)
			}
			deadline := time.After(time.Second)
			for {
				select {
				case _, ok := <-a.Recv():
					if !ok {
						return
					}
				case <-deadline:
					t.Fatal("endpoint receive channel not closed by segment close")
				}
			}
		})
	}
}

func TestUDPBroadcastSkipsDepartedMember(t *testing.T) {
	seg := NewUDPSegment()
	defer seg.Close()
	a, _ := seg.NewEndpoint("a")
	b, _ := seg.NewEndpoint("b")
	c, _ := seg.NewEndpoint("c")
	_ = b.Close()
	if err := a.Broadcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := recvDatagram(t, c, 3*time.Second); string(d.Payload) != "x" {
		t.Errorf("payload = %q", d.Payload)
	}
}

func TestSimSegmentFaultInjection(t *testing.T) {
	seg := fastSimSegment()
	defer seg.Close()
	a, _ := seg.NewEndpoint("a")
	b, _ := seg.NewEndpoint("b")
	// Partition through the exposed simulator.
	idB, err := parseSimAddr(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	seg.Network().Partition(idB)
	if err := a.Send(b.Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-b.Recv():
		t.Errorf("datagram crossed partition: %+v", d)
	case <-time.After(50 * time.Millisecond):
	}
	seg.Network().Heal()
	if err := a.Send(b.Addr(), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if d := recvDatagram(t, b, 3*time.Second); string(d.Payload) != "y" {
		t.Errorf("post-heal payload = %q", d.Payload)
	}
}
