package transport

import (
	"fmt"
	"net"
	"sync"
)

// UDPSegment is a broadcast domain over real UDP sockets bound to the
// loopback interface. It exercises the paper's actual code path — "UDP
// packets in combination with a retransmission protocol" — against the
// kernel network stack. Broadcast is emulated by unicast fan-out to the
// segment's member list, the same strategy the paper's information routers
// use on networks without Ethernet broadcast.
type UDPSegment struct {
	mu      sync.Mutex
	closed  bool
	members map[string]*udpEndpoint // addr -> endpoint
}

// NewUDPSegment creates an empty UDP segment.
func NewUDPSegment() *UDPSegment {
	return &UDPSegment{members: make(map[string]*udpEndpoint)}
}

// NewEndpoint binds a UDP socket on 127.0.0.1 with a kernel-assigned port.
func (s *UDPSegment) NewEndpoint(name string) (Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("transport: binding UDP socket: %w", err)
	}
	ep := &udpEndpoint{
		seg:  s,
		name: name,
		conn: conn,
		out:  make(chan Datagram, 1024),
		done: make(chan struct{}),
	}
	s.members[ep.Addr()] = ep
	go ep.readLoop()
	return ep, nil
}

// Close shuts down the segment and all endpoints.
func (s *UDPSegment) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	eps := make([]*udpEndpoint, 0, len(s.members))
	for _, ep := range s.members {
		eps = append(eps, ep)
	}
	s.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	return nil
}

func (s *UDPSegment) memberAddrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.members))
	for a := range s.members {
		out = append(out, a)
	}
	return out
}

func (s *UDPSegment) remove(addr string) {
	s.mu.Lock()
	delete(s.members, addr)
	s.mu.Unlock()
}

type udpEndpoint struct {
	seg       *UDPSegment
	name      string
	conn      *net.UDPConn
	out       chan Datagram
	done      chan struct{}
	closeOnce sync.Once
}

const maxUDPDatagram = 64 << 10

func (e *udpEndpoint) Addr() string { return "udp:" + e.conn.LocalAddr().String() }

func (e *udpEndpoint) Send(addr string, payload []byte) error {
	if len(payload) > maxUDPDatagram {
		return fmt.Errorf("%d bytes: %w", len(payload), ErrOversize)
	}
	host, ok := cutPrefix(addr, "udp:")
	if !ok {
		return fmt.Errorf("%q: %w", addr, ErrBadAddr)
	}
	udpAddr, err := net.ResolveUDPAddr("udp4", host)
	if err != nil {
		return fmt.Errorf("%q: %w", addr, ErrBadAddr)
	}
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	_, err = e.conn.WriteToUDP(payload, udpAddr)
	return err
}

func (e *udpEndpoint) Broadcast(payload []byte) error {
	self := e.Addr()
	var firstErr error
	for _, addr := range e.seg.memberAddrs() {
		if addr == self {
			continue
		}
		if err := e.Send(addr, payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (e *udpEndpoint) Recv() <-chan Datagram { return e.out }

func (e *udpEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		e.seg.remove(e.Addr())
		_ = e.conn.Close()
	})
	return nil
}

func (e *udpEndpoint) readLoop() {
	defer close(e.out)
	buf := make([]byte, maxUDPDatagram)
	for {
		n, from, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		payload := append([]byte(nil), buf[:n]...)
		select {
		case e.out <- Datagram{From: "udp:" + from.String(), Payload: payload}:
		case <-e.done:
			return
		default:
			// Receive queue full: drop, like a kernel socket buffer.
		}
	}
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}
