package rmi

import (
	"fmt"
	"sync"

	"time"

	"infobus/internal/core"
	"infobus/internal/discovery"
	"infobus/internal/mop"
	"infobus/internal/reliable"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
	"infobus/internal/wire"
)

// ServerOptions tune an RMI server.
type ServerOptions struct {
	// Load reports the server's current load for client-side balancing
	// (PickLeastLoaded). Nil reports zero.
	Load func() int64
	// Standby makes the server hold back from discovery until Promote is
	// called — the "servers decide among themselves" policy: a hot
	// standby takes over the subject the moment the primary retires (R1).
	Standby bool
	// Reliable tunes the point-to-point channel.
	Reliable reliable.Config
	// ReplyCache bounds the exactly-once reply cache. Default 1024.
	ReplyCache int
}

// Server serves method invocations for a service subject.
type Server struct {
	service string
	iface   *mop.Type
	handler Handler
	bus     *core.Bus
	conn    *reliable.Conn
	reg     *mop.Registry
	opts    ServerOptions

	// Host-registry telemetry (aggregated across the host's servers).
	mInvoked  *telemetry.Counter
	mReplayed *telemetry.Counter
	mHandleNs *telemetry.Histogram

	mu        sync.Mutex
	announcer *discovery.Announcer
	cache     map[string]cachedReply // request id -> reply payload
	cacheFIFO []string
	invoked   uint64
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

type cachedReply struct {
	payload []byte
	from    string
}

// NewServer creates a server object for a service subject. iface is the
// service's interface class (its Operations define the callable methods);
// handler executes them. The server listens on its own point-to-point
// endpoint on seg and, unless Standby, announces itself immediately.
func NewServer(bus *core.Bus, seg transport.Segment, service string, iface *mop.Type, handler Handler, opts ServerOptions) (*Server, error) {
	if iface == nil || iface.Kind() != mop.KindClass {
		return nil, fmt.Errorf("rmi: interface must be a class: %w", mop.ErrNotAClass)
	}
	if opts.ReplyCache <= 0 {
		opts.ReplyCache = 1024
	}
	ep, err := seg.NewEndpoint("rmi:" + service)
	if err != nil {
		return nil, err
	}
	metrics := bus.Host().Metrics()
	s := &Server{
		service:   service,
		iface:     iface,
		handler:   handler,
		bus:       bus,
		conn:      reliable.New(ep, opts.Reliable),
		reg:       bus.Registry(),
		opts:      opts,
		cache:     make(map[string]cachedReply),
		done:      make(chan struct{}),
		mInvoked:  metrics.Counter("rmi.server.invoked"),
		mReplayed: metrics.Counter("rmi.server.replayed"),
		mHandleNs: metrics.Histogram("rmi.server.handle_ns"),
	}
	// Identical re-registration returns nil; a true conflict is fatal.
	if err := s.reg.Register(iface); err != nil {
		_ = s.conn.Close()
		return nil, err
	}
	s.wg.Add(1)
	go s.serveLoop()
	if !opts.Standby {
		if err := s.Promote(); err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Addr returns the server's point-to-point address.
func (s *Server) Addr() string { return s.conn.Addr() }

// Invoked returns the number of executed (non-cached) invocations.
func (s *Server) Invoked() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.invoked
}

// Promote starts answering discovery queries (a no-op if already active).
// A standby server calls this to take over the service subject.
func (s *Server) Promote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.announcer != nil {
		return nil
	}
	a, err := discovery.Announce(s.bus, s.service, s.infoObject)
	if err != nil {
		return err
	}
	s.announcer = a
	return nil
}

// Retire stops answering discovery queries while continuing to serve
// already-connected clients — the paper's live-upgrade sequence: "The old
// server can be taken off-line after it has satisfied all of its
// outstanding requests."
func (s *Server) Retire() {
	s.mu.Lock()
	a := s.announcer
	s.announcer = nil
	s.mu.Unlock()
	if a != nil {
		a.Close()
	}
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	a := s.announcer
	s.announcer = nil
	close(s.done)
	s.mu.Unlock()
	if a != nil {
		a.Close()
	}
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// infoObject builds the discovery "I am" payload.
func (s *Server) infoObject() mop.Value {
	var load int64
	if s.opts.Load != nil {
		load = s.opts.Load()
	}
	// The prototype instance carries the interface class descriptor —
	// including operation signatures — across the wire.
	proto, err := mop.New(s.iface)
	var ifaceVal mop.Value
	if err == nil {
		ifaceVal = proto
	}
	return mop.MustNew(ServerInfoType).
		MustSet("addr", s.Addr()).
		MustSet("load", load).
		MustSet("iface", ifaceVal)
}

func (s *Server) serveLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case m, ok := <-s.conn.Recv():
			if !ok {
				return
			}
			s.handleRequest(m)
		}
	}
}

func (s *Server) handleRequest(m reliable.Message) {
	v, err := wire.Unmarshal(m.Payload, s.reg)
	if err != nil {
		return
	}
	req, ok := v.(*mop.Object)
	if !ok || req.Type().Name() != RequestType.Name() {
		return
	}
	id, _ := req.Get("id")
	reqID, ok := id.(string)
	if !ok {
		return
	}
	// Exactly-once: a retried request is answered from the cache without
	// re-executing the method.
	s.mu.Lock()
	if cached, hit := s.cache[reqID]; hit {
		s.mu.Unlock()
		s.mReplayed.Inc()
		_ = s.conn.SendTo(m.From, cached.payload)
		return
	}
	s.mu.Unlock()

	opV, _ := req.Get("op")
	argsV, _ := req.Get("args")
	op, _ := opV.(string)
	var args []mop.Value
	if l, ok := argsV.(mop.List); ok {
		args = l
	}

	start := time.Now()
	result, invokeErr := s.invoke(op, args)
	s.mHandleNs.Observe(time.Since(start))
	reply := mop.MustNew(ReplyType).MustSet("id", reqID)
	if invokeErr != nil {
		reply.MustSet("ok", false).MustSet("error", invokeErr.Error())
	} else {
		reply.MustSet("ok", true)
		if err := reply.Set("result", result); err != nil {
			reply.MustSet("ok", false).MustSet("error", "rmi: result not transmissible: "+err.Error())
		}
	}
	payload, err := wire.Marshal(reply)
	if err != nil {
		return
	}
	s.mInvoked.Inc()
	s.mu.Lock()
	s.invoked++
	s.cache[reqID] = cachedReply{payload: payload, from: m.From}
	s.cacheFIFO = append(s.cacheFIFO, reqID)
	for len(s.cacheFIFO) > s.opts.ReplyCache {
		delete(s.cache, s.cacheFIFO[0])
		s.cacheFIFO = s.cacheFIFO[1:]
	}
	s.mu.Unlock()
	_ = s.conn.SendTo(m.From, payload)
}

// invoke validates the operation against the interface and runs the
// handler.
func (s *Server) invoke(op string, args []mop.Value) (mop.Value, error) {
	decl, ok := s.iface.Operation(op)
	if !ok {
		return nil, fmt.Errorf("%s.%s: %w", s.iface.Name(), op, ErrBadOp)
	}
	if len(args) != len(decl.Params) {
		return nil, fmt.Errorf("%s takes %d args, got %d: %w", decl.Signature(), len(decl.Params), len(args), ErrBadArgCount)
	}
	for i, p := range decl.Params {
		if err := mop.CheckValue(p.Type, args[i]); err != nil {
			return nil, fmt.Errorf("argument %q: %w", p.Name, err)
		}
	}
	if s.handler == nil {
		return nil, fmt.Errorf("%s: %w", op, ErrBadOp)
	}
	return s.handler(op, args)
}
