package rmi

import (
	"fmt"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
)

// The election in this file implements the server-side multiple-server
// policy of §3.3: "The servers can decide among themselves which one will
// respond to a request from the client." A group of equivalent members for
// one service subject run an election over the bus itself — no
// coordinator, no name service, just publications on a well-known election
// subject (P4):
//
//   - every member periodically publishes a presence beacon carrying a
//     stable identity token;
//   - each member tracks the beacons it hears; a member whose token is
//     the smallest among live members considers itself leader;
//   - the leader Promotes its candidate; everyone else Retires. When the
//     leader dies, its beacons stop, its entry expires, and the
//     next-smallest member promotes itself.

// Candidate is what an election promotes and retires: an *rmi.Server
// answering discovery only while leading, or any other standby role — the
// qledger recovery coordinator elects one coordinator among the replica
// hosts this way. Promote and Retire are called on leadership transitions
// only, never concurrently with each other.
type Candidate interface {
	Promote() error
	Retire()
}

// Election enrolls one member (and its Candidate) in the election group
// for a service. The hand-off window is bounded by BeaconInterval and
// Lifetime. During a hand-off, clients either reach the old leader (still
// draining) or re-discover the new one — the continuous-operation story
// of R1.
type Election struct {
	bus     *core.Bus
	cand    Candidate
	subject string
	token   string
	opts    ElectionOptions

	mu      sync.Mutex
	members map[string]time.Time // token -> last heard
	leading bool
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
	sub     *core.Subscription
}

// ElectionOptions tune the election timing.
type ElectionOptions struct {
	// BeaconInterval is how often presence is re-published. Default 50ms.
	BeaconInterval time.Duration
	// Lifetime is how long a member stays "live" without a fresh beacon.
	// Default 4x BeaconInterval.
	Lifetime time.Duration
}

// beaconType carries one presence announcement.
var beaconType = mop.MustNewClass("RMIElectionBeacon", nil, []mop.Attr{
	{Name: "token", Type: mop.String},
}, nil)

// NewElection enrolls a candidate in the election group for its service.
// An *rmi.Server candidate should be constructed with Standby: true; the
// election decides who answers discovery. Close the election before
// closing the candidate.
func NewElection(bus *core.Bus, cand Candidate, service string, opts ElectionOptions) (*Election, error) {
	if opts.BeaconInterval <= 0 {
		opts.BeaconInterval = 50 * time.Millisecond
	}
	if opts.Lifetime <= 0 {
		opts.Lifetime = 4 * opts.BeaconInterval
	}
	subjectName := "_election." + service
	sub, err := bus.Subscribe(subjectName)
	if err != nil {
		return nil, err
	}
	e := &Election{
		bus:     bus,
		cand:    cand,
		subject: subjectName,
		token:   fmt.Sprintf("%016x-%s", bus.Host().Token(), bus.Host().Addr()),
		opts:    opts,
		members: make(map[string]time.Time),
		done:    make(chan struct{}),
		sub:     sub,
	}
	// A member is always live to itself.
	e.members[e.token] = time.Now().Add(365 * 24 * time.Hour)
	e.wg.Add(2)
	go e.listen()
	go e.beaconLoop()
	return e, nil
}

// Token returns this member's election identity.
func (e *Election) Token() string { return e.token }

// Leading reports whether this member currently holds leadership.
func (e *Election) Leading() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.leading
}

// Members returns the number of live members currently known (self
// included).
func (e *Election) Members() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := time.Now()
	n := 0
	for _, seen := range e.members {
		if seen.After(now) {
			n++
		}
	}
	return n
}

// Close withdraws from the election (retiring the server if leading).
func (e *Election) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	wasLeading := e.leading
	e.mu.Unlock()
	close(e.done)
	e.sub.Cancel()
	e.wg.Wait()
	if wasLeading {
		e.cand.Retire()
	}
}

func (e *Election) listen() {
	defer e.wg.Done()
	for {
		select {
		case <-e.done:
			return
		case ev, ok := <-e.sub.C:
			if !ok {
				return
			}
			obj, isObj := ev.Value.(*mop.Object)
			if !isObj || obj.Type().Name() != beaconType.Name() {
				continue
			}
			tokenV, _ := obj.Get("token")
			token, _ := tokenV.(string)
			if token == "" || token == e.token {
				continue
			}
			e.mu.Lock()
			e.members[token] = time.Now().Add(e.opts.Lifetime)
			e.mu.Unlock()
		}
	}
}

func (e *Election) beaconLoop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.opts.BeaconInterval)
	defer ticker.Stop()
	for {
		beacon := mop.MustNew(beaconType).MustSet("token", e.token)
		_ = e.bus.Publish(e.subject, beacon)
		_ = e.bus.Flush()
		e.evaluate()
		select {
		case <-e.done:
			return
		case <-ticker.C:
		}
	}
}

// evaluate recomputes leadership from the live-member set and promotes or
// retires the server on transitions.
func (e *Election) evaluate() {
	now := time.Now()
	e.mu.Lock()
	smallest := e.token
	for token, seen := range e.members {
		if seen.Before(now) {
			delete(e.members, token)
			continue
		}
		if token < smallest {
			smallest = token
		}
	}
	shouldLead := smallest == e.token
	transition := shouldLead != e.leading
	e.leading = shouldLead
	e.mu.Unlock()
	if !transition {
		return
	}
	if shouldLead {
		_ = e.cand.Promote()
	} else {
		e.cand.Retire()
	}
}
