package rmi

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"infobus/internal/netsim"
)

// testCandidate counts leadership transitions — the Candidate interface
// decoupled elections from *Server, so a bare counter is enough here.
type testCandidate struct {
	promotes atomic.Int32
	retires  atomic.Int32
}

func (c *testCandidate) Promote() error { c.promotes.Add(1); return nil }
func (c *testCandidate) Retire()        { c.retires.Add(1) }

// TestElectionPartitionHeal drives the election through a network
// partition: the leader's node is isolated, the surviving majority elects
// a replacement, and after healing the group converges back to a single
// leader with full membership. During the partition both sides have a
// leader (the protocol is availability-first, see §3.3); the invariant
// checked is convergence after heal, not mutual exclusion during it.
func TestElectionPartitionHeal(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	eopts := ElectionOptions{BeaconInterval: 5 * time.Millisecond}
	const n = 3
	cands := make([]*testCandidate, n)
	elections := make([]*Election, n)
	nodeIDs := make([]netsim.NodeID, n)
	for i := 0; i < n; i++ {
		bus := newBus(t, seg, fmt.Sprintf("member%d", i))
		var id int
		if _, err := fmt.Sscanf(bus.Host().Addr(), "sim:%d", &id); err != nil {
			t.Fatalf("host addr %q: %v", bus.Host().Addr(), err)
		}
		nodeIDs[i] = netsim.NodeID(id)
		cands[i] = &testCandidate{}
		e, err := NewElection(bus, cands[i], "part.svc", eopts)
		if err != nil {
			t.Fatal(err)
		}
		elections[i] = e
	}
	defer func() {
		for _, e := range elections {
			e.Close()
		}
	}()

	leaders := func() (count, idx int) {
		idx = -1
		for i, e := range elections {
			if e.Leading() {
				count++
				idx = i
			}
		}
		return count, idx
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for !cond() {
			select {
			case <-deadline:
				c, i := leaders()
				t.Fatalf("%s: leaders=%d(idx %d) members=%d/%d/%d", what, c, i,
					elections[0].Members(), elections[1].Members(), elections[2].Members())
			case <-time.After(2 * time.Millisecond):
			}
		}
	}

	// Stable start: one leader, everyone sees everyone.
	waitFor("initial convergence", func() bool {
		c, _ := leaders()
		return c == 1 &&
			elections[0].Members() == n && elections[1].Members() == n && elections[2].Members() == n
	})
	_, leaderIdx := leaders()

	// Isolate the leader's node. The other two members lose its beacons,
	// expire it, and the smaller of their tokens takes over.
	seg.Network().Partition(nodeIDs[leaderIdx])
	waitFor("majority-side takeover", func() bool {
		for i, e := range elections {
			if i != leaderIdx && e.Leading() {
				return e.Members() == n-1
			}
		}
		return false
	})
	// The isolated old leader still leads its singleton side — split brain
	// is bounded by the partition itself.
	if !elections[leaderIdx].Leading() || elections[leaderIdx].Members() != 1 {
		t.Fatalf("isolated leader: leading=%v members=%d",
			elections[leaderIdx].Leading(), elections[leaderIdx].Members())
	}

	// Heal: beacons flow again, membership recovers to 3, and exactly one
	// member (the globally smallest token) holds leadership.
	seg.Network().Heal()
	waitFor("post-heal convergence", func() bool {
		c, _ := leaders()
		return c == 1 &&
			elections[0].Members() == n && elections[1].Members() == n && elections[2].Members() == n
	})

	// Every transition was delivered to the candidates: whoever leads now
	// has one more promote than retire; everyone else is balanced.
	_, finalIdx := leaders()
	for i, c := range cands {
		p, r := c.promotes.Load(), c.retires.Load()
		want := int32(0)
		if i == finalIdx {
			want = 1
		}
		if p-r != want {
			t.Errorf("candidate %d: promotes=%d retires=%d (want diff %d)", i, p, r, want)
		}
	}
}
