package rmi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/discovery"
	"infobus/internal/mop"
	"infobus/internal/reliable"
	"infobus/internal/transport"
)

// Failover is the fault-tolerant client of §3.3: "Several server objects
// can be used to provide load balancing or fault-tolerance." It holds a
// live connection to one server; when an invocation times out (the server
// crashed or was partitioned away), it runs discovery again and retries
// against whichever server answers the subject now — including a standby
// promoted moments ago (R1). The semantics stay at-most-once per server:
// a failed-over invocation uses a fresh request id, so the caller must
// tolerate the original server having executed before dying, exactly as
// the paper's standard RMI semantics state.
type Failover struct {
	bus     *core.Bus
	seg     transport.Segment
	service string
	opts    DialOptions

	mu     sync.Mutex
	client *Client
	binds  uint64
	closed bool
}

// NewFailover creates a failover client. The first binding happens lazily
// on the first Invoke (so a Failover can be created before any server is
// up).
func NewFailover(bus *core.Bus, seg transport.Segment, service string, opts DialOptions) *Failover {
	return &Failover{bus: bus, seg: seg, service: service, opts: opts}
}

// Binds returns how many times the client has (re)bound to a server.
func (f *Failover) Binds() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.binds
}

// ServerAddr returns the currently bound server's address, or "".
func (f *Failover) ServerAddr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.client == nil {
		return ""
	}
	return f.client.ServerAddr()
}

// Close releases the underlying connection.
func (f *Failover) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	if f.client != nil {
		c := f.client
		f.client = nil
		return c.Close()
	}
	return nil
}

// Invoke calls the operation, rebinding to another server once if the
// current one does not answer.
func (f *Failover) Invoke(op string, args ...any) (any, error) {
	client, err := f.current()
	if err != nil {
		return nil, err
	}
	result, err := client.Invoke(op, args...)
	if err == nil || !errors.Is(err, ErrTimeout) {
		return result, err
	}
	// The bound server is gone: drop it, rediscover, retry once.
	if rebindErr := f.rebind(client); rebindErr != nil {
		return nil, fmt.Errorf("%w (rebind also failed: %v)", err, rebindErr)
	}
	client, err = f.current()
	if err != nil {
		return nil, err
	}
	return client.Invoke(op, args...)
}

func (f *Failover) current() (*Client, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if f.client != nil {
		return f.client, nil
	}
	c, err := Dial(f.bus, f.seg, f.service, f.opts)
	if err != nil {
		return nil, err
	}
	f.client = c
	f.binds++
	return c, nil
}

// rebind discards the failed client (if still current) and dials anew.
func (f *Failover) rebind(failed *Client) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if f.client == failed {
		_ = f.client.Close()
		f.client = nil
	}
	f.mu.Unlock()
	_, err := f.current()
	return err
}

// DialAll implements the other multiple-server policy of §3.3:
// "Alternatively, the client can receive every response from all of the
// servers and then decide which server the client wants to use." It
// returns one connected client per discovered server; the caller inspects
// them (addresses, interfaces, a probe invocation) and keeps the one it
// wants, closing the rest.
func DialAll(bus *core.Bus, seg transport.Segment, service string, opts DialOptions) ([]*Client, error) {
	if opts.DiscoveryWindow <= 0 {
		opts.DiscoveryWindow = 50 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	found, err := discovery.Discover(bus, service, discovery.Options{Window: opts.DiscoveryWindow})
	if err != nil {
		return nil, err
	}
	infos := serverInfos(found)
	if len(infos) == 0 {
		return nil, fmt.Errorf("service %q: %w", service, ErrNoServer)
	}
	clients := make([]*Client, 0, len(infos))
	for _, info := range infos {
		ep, err := seg.NewEndpoint("rmi-client:" + service)
		if err != nil {
			for _, c := range clients {
				_ = c.Close()
			}
			return nil, err
		}
		c := &Client{
			service: service,
			server:  info.addr,
			iface:   info.iface,
			conn:    reliable.New(ep, opts.Reliable),
			reg:     bus.Registry(),
			opts:    opts,
			waiting: make(map[string]chan *mop.Object),
			done:    make(chan struct{}),
		}
		c.bindMetrics(bus.Host().Metrics())
		c.wg.Add(1)
		go c.recvLoop()
		clients = append(clients, c)
	}
	return clients, nil
}

// InvokeAll performs one scatter-gather invocation: the operation runs on
// every client concurrently and all results (or errors) come back, indexed
// like clients.
func InvokeAll(clients []*Client, op string, args ...mop.Value) ([]mop.Value, []error) {
	results := make([]mop.Value, len(clients))
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			results[i], errs[i] = c.Invoke(op, args...)
		}(i, c)
	}
	wg.Wait()
	return results, errs
}
