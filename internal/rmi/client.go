package rmi

import (
	"fmt"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/discovery"
	"infobus/internal/mop"
	"infobus/internal/reliable"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
	"infobus/internal/wire"
)

// Policy selects among multiple servers answering discovery.
type Policy int

const (
	// PickFirst uses the first server to answer — lowest connect latency.
	PickFirst Policy = iota
	// PickLeastLoaded collects all answers within the discovery window
	// and picks the server reporting the smallest load.
	PickLeastLoaded
	// PickRandom collects all answers and picks uniformly — cheap load
	// spreading without load reports.
	PickRandom
)

// DialOptions tune client-side discovery and invocation.
type DialOptions struct {
	Policy Policy
	// DiscoveryWindow bounds the discovery round. Default 50ms.
	DiscoveryWindow time.Duration
	// Timeout bounds one invocation attempt. Default 500ms.
	Timeout time.Duration
	// Retries is how many additional attempts an invocation makes before
	// reporting ErrTimeout. Retried attempts reuse the request id, so a
	// slow (rather than dead) server never executes twice. Default 2.
	Retries int
	// Reliable tunes the point-to-point channel.
	Reliable reliable.Config
}

// Client is a connection to one server object, produced by Dial.
type Client struct {
	service string
	server  string // point-to-point address
	iface   *mop.Type
	conn    *reliable.Conn
	reg     *mop.Registry
	opts    DialOptions

	// Host-registry telemetry (aggregated across the host's clients).
	mInvokes  *telemetry.Counter
	mRetries  *telemetry.Counter
	mTimeouts *telemetry.Counter
	mInvokeNs *telemetry.Histogram

	mu      sync.Mutex
	waiting map[string]chan *mop.Object
	nextID  uint64
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// Dial discovers servers for a service subject and connects to one chosen
// by the policy.
func Dial(bus *core.Bus, seg transport.Segment, service string, opts DialOptions) (*Client, error) {
	if opts.DiscoveryWindow <= 0 {
		opts.DiscoveryWindow = 50 * time.Millisecond
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 500 * time.Millisecond
	}
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	discOpts := discovery.Options{Window: opts.DiscoveryWindow}
	if opts.Policy == PickFirst {
		discOpts.Max = 1
	}
	found, err := discovery.Discover(bus, service, discOpts)
	if err != nil {
		return nil, err
	}
	infos := serverInfos(found)
	if len(infos) == 0 {
		return nil, fmt.Errorf("service %q: %w", service, ErrNoServer)
	}
	chosen := choose(infos, opts.Policy, bus.Host().Token())

	ep, err := seg.NewEndpoint("rmi-client:" + service)
	if err != nil {
		return nil, err
	}
	c := &Client{
		service: service,
		server:  chosen.addr,
		iface:   chosen.iface,
		conn:    reliable.New(ep, opts.Reliable),
		reg:     bus.Registry(),
		opts:    opts,
		waiting: make(map[string]chan *mop.Object),
		done:    make(chan struct{}),
	}
	c.bindMetrics(bus.Host().Metrics())
	c.wg.Add(1)
	go c.recvLoop()
	return c, nil
}

// bindMetrics resolves the client's telemetry handles in the host
// registry. Every Client constructor must call it before recvLoop starts.
func (c *Client) bindMetrics(metrics *telemetry.Registry) {
	c.mInvokes = metrics.Counter("rmi.client.invokes")
	c.mRetries = metrics.Counter("rmi.client.retries")
	c.mTimeouts = metrics.Counter("rmi.client.timeouts")
	c.mInvokeNs = metrics.Histogram("rmi.client.invoke_ns")
}

type serverInfo struct {
	addr  string
	load  int64
	iface *mop.Type
}

func serverInfos(found []discovery.Found) []serverInfo {
	var out []serverInfo
	for _, f := range found {
		obj, ok := f.Info.(*mop.Object)
		if !ok || obj.Type().Name() != ServerInfoType.Name() {
			continue
		}
		addrV, _ := obj.Get("addr")
		loadV, _ := obj.Get("load")
		addr, ok := addrV.(string)
		if !ok || addr == "" {
			continue
		}
		info := serverInfo{addr: addr}
		if l, ok := loadV.(int64); ok {
			info.load = l
		}
		if proto, _ := obj.Get("iface"); proto != nil {
			if po, ok := proto.(*mop.Object); ok {
				info.iface = po.Type()
			}
		}
		out = append(out, info)
	}
	return out
}

// choose picks a server. draw is one value from the host's seeded token
// stream (core.Host.Token), used only by PickRandom.
func choose(infos []serverInfo, p Policy, draw uint64) serverInfo {
	switch p {
	case PickLeastLoaded:
		best := infos[0]
		for _, s := range infos[1:] {
			if s.load < best.load {
				best = s
			}
		}
		return best
	case PickRandom:
		return infos[draw%uint64(len(infos))]
	default:
		return infos[0]
	}
}

// ServerAddr returns the point-to-point address of the connected server.
func (c *Client) ServerAddr() string { return c.server }

// Interface returns the server's interface class as reconstructed from the
// discovery reply — operation names and signatures included (P2). It is
// nil if the server did not include a prototype.
func (c *Client) Interface() *mop.Type { return c.iface }

// Invoke calls an operation on the connected server object and waits for
// the reply.
func (c *Client) Invoke(op string, args ...mop.Value) (mop.Value, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextID++
	id := fmt.Sprintf("%s/%d", c.conn.Addr(), c.nextID)
	ch := make(chan *mop.Object, 1)
	c.waiting[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiting, id)
		c.mu.Unlock()
	}()

	req := mop.MustNew(RequestType).
		MustSet("id", id).
		MustSet("op", op)
	if err := req.Set("args", mop.List(args)); err != nil {
		return nil, fmt.Errorf("rmi: arguments not transmissible: %w", err)
	}
	payload, err := wire.Marshal(req)
	if err != nil {
		return nil, err
	}

	c.mInvokes.Inc()
	start := time.Now()
	attempts := c.opts.Retries + 1
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.mRetries.Inc()
		}
		if err := c.conn.SendTo(c.server, payload); err != nil {
			return nil, err
		}
		timer := time.NewTimer(c.opts.Timeout)
		select {
		case reply := <-ch:
			timer.Stop()
			c.mInvokeNs.Observe(time.Since(start))
			return decodeReply(reply)
		case <-c.done:
			timer.Stop()
			return nil, ErrClosed
		case <-timer.C:
			// Retry with the same id: the server's reply cache keeps this
			// exactly-once under normal operation.
		}
	}
	c.mTimeouts.Inc()
	return nil, fmt.Errorf("%s on %s after %d attempts: %w", op, c.server, attempts, ErrTimeout)
}

func decodeReply(reply *mop.Object) (mop.Value, error) {
	okV, _ := reply.Get("ok")
	if ok, _ := okV.(bool); !ok {
		msg, _ := reply.Get("error")
		s, _ := msg.(string)
		return nil, fmt.Errorf("%w: %s", ErrRemote, s)
	}
	result, _ := reply.Get("result")
	return result, nil
}

// Close releases the client's endpoint.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

func (c *Client) recvLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case m, ok := <-c.conn.Recv():
			if !ok {
				return
			}
			v, err := wire.Unmarshal(m.Payload, c.reg)
			if err != nil {
				continue
			}
			reply, ok := v.(*mop.Object)
			if !ok || reply.Type().Name() != ReplyType.Name() {
				continue
			}
			idV, _ := reply.Get("id")
			id, _ := idV.(string)
			c.mu.Lock()
			ch := c.waiting[id]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- reply:
				default: // duplicate reply to a satisfied request
				}
			}
		}
	}
}
