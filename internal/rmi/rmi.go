// Package rmi implements Remote Method Invocation (§3.3), the Information
// Bus's demand-driven communication style: "Clients invoke a method on a
// remote server object without regard to that server object's location,
// the server object executes the method, and the server replies to the
// client. Servers are named with subjects."
//
// The protocol has two parts, exactly as Figure 2 of the paper shows:
//
//  1. Discovery: the client publishes a query on the service's subject;
//     servers publish their point-to-point address (and state) back
//     (internal/discovery).
//  2. Invocation: the client sends requests over a point-to-point
//     reliable channel to the chosen server's address.
//
// Standard semantics are exactly-once under normal operation and
// at-most-once under failures: requests carry unique ids, servers keep a
// reply cache so client retries never re-execute a method, and a client
// gives up after its retry budget.
//
// Multiple servers may serve one subject, for load balancing or
// fault-tolerance. The client chooses among the responders (policy
// PickFirst / PickLeastLoaded), or the servers decide among themselves —
// a standby server simply does not answer discovery until promoted.
//
// Service interfaces are mop classes whose operations define the
// signatures. The interface descriptor travels inside the discovery reply
// (self-describing, P2), so a client can introspect a service it has
// never linked against — this is what lets the Graphical Application
// Builder pop up operation menus for brand-new services (§5.2).
package rmi

import (
	"errors"

	"infobus/internal/mop"
)

// Protocol message classes.
var (
	// RequestType carries one invocation.
	RequestType = mop.MustNewClass("RMIRequest", nil, []mop.Attr{
		{Name: "id", Type: mop.String},
		{Name: "op", Type: mop.String},
		{Name: "args", Type: mop.ListOf(mop.Any)},
	}, nil)
	// ReplyType carries the result or error of one invocation.
	ReplyType = mop.MustNewClass("RMIReply", nil, []mop.Attr{
		{Name: "id", Type: mop.String},
		{Name: "ok", Type: mop.Bool},
		{Name: "result", Type: mop.Any},
		{Name: "error", Type: mop.String},
	}, nil)
	// ServerInfoType is the "I am" payload of an RMI server: its
	// point-to-point address, a load figure for client-side balancing,
	// and a prototype instance of its interface class (carrying the
	// operation signatures).
	ServerInfoType = mop.MustNewClass("RMIServerInfo", nil, []mop.Attr{
		{Name: "addr", Type: mop.String},
		{Name: "load", Type: mop.Int},
		{Name: "iface", Type: mop.Any},
	}, nil)
)

// Errors shared by client and server.
var (
	ErrNoServer    = errors.New("rmi: no server answered discovery")
	ErrTimeout     = errors.New("rmi: invocation timed out")
	ErrClosed      = errors.New("rmi: closed")
	ErrBadOp       = errors.New("rmi: no such operation")
	ErrRemote      = errors.New("rmi: remote error")
	ErrBadArgCount = errors.New("rmi: wrong number of arguments")
)

// Handler executes one operation of a service object. Implementations are
// invoked concurrently from the server's request loop.
type Handler func(op string, args []mop.Value) (mop.Value, error)
