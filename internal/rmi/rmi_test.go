package rmi

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/tdl"
	"infobus/internal/transport"
)

func fastReliable() reliable.Config {
	return reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
}

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	return transport.NewSimSegment(cfg)
}

func newBus(t *testing.T, seg transport.Segment, host string) *core.Bus {
	t.Helper()
	h, err := core.NewHost(seg, host, core.HostConfig{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	b, err := h.NewBus("app")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// calcIface is a small arithmetic service interface.
func calcIface() *mop.Type {
	return mop.MustNewClass("Calculator", nil, nil, []mop.Operation{
		{Name: "add", Params: []mop.Param{{Name: "a", Type: mop.Int}, {Name: "b", Type: mop.Int}}, Result: mop.Int},
		{Name: "upcase", Params: []mop.Param{{Name: "s", Type: mop.String}}, Result: mop.String},
		{Name: "fail", Params: nil, Result: nil},
	})
}

func calcHandler(op string, args []mop.Value) (mop.Value, error) {
	switch op {
	case "add":
		return args[0].(int64) + args[1].(int64), nil
	case "upcase":
		s := args[0].(string)
		out := make([]byte, len(s))
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 'a' && c <= 'z' {
				c -= 32
			}
			out[i] = c
		}
		return string(out), nil
	case "fail":
		return nil, errors.New("deliberate failure")
	default:
		return nil, ErrBadOp
	}
}

func dialOpts() DialOptions {
	return DialOptions{
		DiscoveryWindow: 200 * time.Millisecond,
		Timeout:         300 * time.Millisecond,
		Retries:         3,
		Reliable:        fastReliable(),
	}
}

func startCalc(t *testing.T, seg transport.Segment, host string, opts ServerOptions) *Server {
	t.Helper()
	bus := newBus(t, seg, host)
	opts.Reliable = fastReliable()
	s, err := NewServer(bus, seg, "svc.calc", calcIface(), calcHandler, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func TestInvokeRoundTrip(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	startCalc(t, seg, "server", ServerOptions{})
	clientBus := newBus(t, seg, "client")
	c, err := Dial(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := c.Invoke("add", int64(2), int64(40))
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(42) {
		t.Errorf("add = %v", got)
	}
	got, err = c.Invoke("upcase", "gm")
	if err != nil || got != "GM" {
		t.Errorf("upcase = %v, %v", got, err)
	}
}

func TestRemoteIntrospection(t *testing.T) {
	// The client learns the service's interface — operations and
	// signatures — purely from the discovery reply (P2).
	seg := fastSeg()
	defer seg.Close()
	startCalc(t, seg, "server", ServerOptions{})
	clientBus := newBus(t, seg, "client")
	c, err := Dial(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	iface := c.Interface()
	if iface == nil {
		t.Fatal("no interface travelled")
	}
	op, ok := iface.Operation("add")
	if !ok {
		t.Fatal("operation add missing from remote interface")
	}
	if got := op.Signature(); got != "add(a int, b int) -> int" {
		t.Errorf("signature = %q", got)
	}
}

func TestRemoteErrorsAndValidation(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	startCalc(t, seg, "server", ServerOptions{})
	clientBus := newBus(t, seg, "client")
	c, err := Dial(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Invoke("fail"); !errors.Is(err, ErrRemote) {
		t.Errorf("handler error = %v, want ErrRemote", err)
	}
	if _, err := c.Invoke("nosuch"); !errors.Is(err, ErrRemote) {
		t.Errorf("unknown op error = %v", err)
	}
	if _, err := c.Invoke("add", int64(1)); !errors.Is(err, ErrRemote) {
		t.Errorf("arity error = %v", err)
	}
	// Type validation happens server-side against the declared signature.
	if _, err := c.Invoke("add", "one", "two"); !errors.Is(err, ErrRemote) {
		t.Errorf("type error = %v", err)
	}
}

func TestDialNoServer(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	clientBus := newBus(t, seg, "client")
	opts := dialOpts()
	opts.DiscoveryWindow = 50 * time.Millisecond
	if _, err := Dial(clientBus, seg, "svc.ghost", opts); !errors.Is(err, ErrNoServer) {
		t.Errorf("Dial error = %v, want ErrNoServer", err)
	}
}

func TestExactlyOnceUnderRetry(t *testing.T) {
	// Force client retries with a lossy network; the server must execute
	// each invocation exactly once (reply cache absorbs retries).
	netCfg := netsim.DefaultConfig()
	netCfg.Speedup = 5000
	netCfg.LossProb = 0.3
	netCfg.Seed = 11
	seg := transport.NewSimSegment(netCfg)
	defer seg.Close()
	var executions atomic.Int64
	bus := newBus(t, seg, "server")
	iface := calcIface()
	s, err := NewServer(bus, seg, "svc.calc", iface, func(op string, args []mop.Value) (mop.Value, error) {
		executions.Add(1)
		return calcHandler(op, args)
	}, ServerOptions{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clientBus := newBus(t, seg, "client")
	opts := dialOpts()
	opts.Timeout = 100 * time.Millisecond
	opts.Retries = 10
	c, err := Dial(clientBus, seg, "svc.calc", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 30
	for i := 0; i < n; i++ {
		got, err := c.Invoke("add", int64(i), int64(1))
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if got != int64(i+1) {
			t.Fatalf("add(%d,1) = %v", i, got)
		}
	}
	if executions.Load() != n {
		t.Errorf("executions = %d, want exactly %d", executions.Load(), n)
	}
}

func TestLeastLoadedPolicy(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	busy := startCalc(t, seg, "busy", ServerOptions{Load: func() int64 { return 90 }})
	idle := startCalc(t, seg, "idle", ServerOptions{Load: func() int64 { return 2 }})

	clientBus := newBus(t, seg, "client")
	opts := dialOpts()
	opts.Policy = PickLeastLoaded
	c, err := Dial(clientBus, seg, "svc.calc", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ServerAddr() != idle.Addr() {
		t.Errorf("chose %s, want idle server %s (busy=%s)", c.ServerAddr(), idle.Addr(), busy.Addr())
	}
	if _, err := c.Invoke("add", int64(1), int64(2)); err != nil {
		t.Fatal(err)
	}
	if idle.Invoked() != 1 || busy.Invoked() != 0 {
		t.Errorf("invocations: idle=%d busy=%d", idle.Invoked(), busy.Invoked())
	}
}

func TestStandbyTakeover(t *testing.T) {
	// R1: live software upgrade. The standby (new version) is promoted,
	// the primary retires after serving outstanding requests, and new
	// clients transparently bind to the new server.
	seg := fastSeg()
	defer seg.Close()
	primary := startCalc(t, seg, "v1", ServerOptions{})
	standby := startCalc(t, seg, "v2", ServerOptions{Standby: true})

	clientBus := newBus(t, seg, "client")
	c1, err := Dial(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if c1.ServerAddr() != primary.Addr() {
		t.Fatalf("first client bound to %s, want primary", c1.ServerAddr())
	}
	if _, err := c1.Invoke("add", int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}

	// Upgrade: promote the standby, retire the primary.
	if err := standby.Promote(); err != nil {
		t.Fatal(err)
	}
	primary.Retire()

	c2, err := Dial(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.ServerAddr() != standby.Addr() {
		t.Fatalf("post-upgrade client bound to %s, want standby %s", c2.ServerAddr(), standby.Addr())
	}
	// The retired primary still serves its connected client (outstanding
	// work drains before shutdown).
	if _, err := c1.Invoke("add", int64(2), int64(2)); err != nil {
		t.Errorf("retired primary refused existing client: %v", err)
	}
}

func TestInvokeTimeoutWhenServerDies(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	srv := startCalc(t, seg, "server", ServerOptions{})
	clientBus := newBus(t, seg, "client")
	opts := dialOpts()
	opts.Timeout = 50 * time.Millisecond
	opts.Retries = 1
	c, err := Dial(clientBus, seg, "svc.calc", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Invoke("add", int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()
	if _, err := c.Invoke("add", int64(1), int64(1)); !errors.Is(err, ErrTimeout) {
		t.Errorf("invoke on dead server = %v, want ErrTimeout", err)
	}
}

func TestObjectsAsArgumentsAndResults(t *testing.T) {
	// Full circle: a TDL-ish dynamic class instance goes out as an
	// argument and a different instance comes back as the result.
	seg := fastSeg()
	defer seg.Close()
	point := mop.MustNewClass("Point", nil, []mop.Attr{
		{Name: "x", Type: mop.Float},
		{Name: "y", Type: mop.Float},
	}, nil)
	iface := mop.MustNewClass("Geometry", nil, nil, []mop.Operation{
		{Name: "mirror", Params: []mop.Param{{Name: "p", Type: point}}, Result: point},
	})
	bus := newBus(t, seg, "server")
	s, err := NewServer(bus, seg, "svc.geo", iface, func(op string, args []mop.Value) (mop.Value, error) {
		p := args[0].(*mop.Object)
		out := mop.MustNew(p.Type())
		out.MustSet("x", -p.MustGet("x").(float64))
		out.MustSet("y", -p.MustGet("y").(float64))
		return out, nil
	}, ServerOptions{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clientBus := newBus(t, seg, "client")
	c, err := Dial(clientBus, seg, "svc.geo", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Client builds its own Point class instance; the server decodes it
	// against the self-describing wire format.
	arg := mop.MustNew(point).MustSet("x", 3.0).MustSet("y", -4.0)
	got, err := c.Invoke("mirror", arg)
	if err != nil {
		t.Fatal(err)
	}
	res := got.(*mop.Object)
	if res.MustGet("x") != -3.0 || res.MustGet("y") != 4.0 {
		t.Errorf("mirror = %s", mop.Sprint(res))
	}
}

func TestClosedClientErrors(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	startCalc(t, seg, "server", ServerOptions{})
	clientBus := newBus(t, seg, "client")
	c, err := Dial(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	_ = c.Close()
	if _, err := c.Invoke("add", int64(1), int64(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("invoke after close = %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	startCalc(t, seg, "server", ServerOptions{})
	const nClients = 4
	errs := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		bus := newBus(t, seg, fmt.Sprintf("client%d", i))
		go func(b *core.Bus, base int64) {
			c, err := Dial(b, seg, "svc.calc", dialOpts())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := int64(0); j < 10; j++ {
				got, err := c.Invoke("add", base, j)
				if err != nil {
					errs <- err
					return
				}
				if got != base+j {
					errs <- fmt.Errorf("add(%d,%d) = %v", base, j, got)
					return
				}
			}
			errs <- nil
		}(bus, int64(i*100))
	}
	for i := 0; i < nClients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFailoverRebindsToSurvivor(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	primary := startCalc(t, seg, "primary", ServerOptions{})
	clientBus := newBus(t, seg, "client")
	opts := dialOpts()
	opts.Timeout = 60 * time.Millisecond
	opts.Retries = 1
	f := NewFailover(clientBus, seg, "svc.calc", opts)
	defer f.Close()

	got, err := f.Invoke("add", int64(1), int64(2))
	if err != nil || got != int64(3) {
		t.Fatalf("first invoke = %v, %v", got, err)
	}
	if f.Binds() != 1 || f.ServerAddr() != primary.Addr() {
		t.Fatalf("bound to %s after %d binds", f.ServerAddr(), f.Binds())
	}

	// A replacement appears; the primary crashes.
	backup := startCalc(t, seg, "backup", ServerOptions{})
	_ = primary.Close()

	got, err = f.Invoke("add", int64(10), int64(20))
	if err != nil || got != int64(30) {
		t.Fatalf("post-crash invoke = %v, %v", got, err)
	}
	if f.ServerAddr() != backup.Addr() {
		t.Errorf("failover bound to %s, want backup %s", f.ServerAddr(), backup.Addr())
	}
	if f.Binds() != 2 {
		t.Errorf("binds = %d, want 2", f.Binds())
	}
}

func TestFailoverNoSurvivor(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	only := startCalc(t, seg, "only", ServerOptions{})
	clientBus := newBus(t, seg, "client")
	opts := dialOpts()
	opts.Timeout = 50 * time.Millisecond
	opts.Retries = 0
	opts.DiscoveryWindow = 60 * time.Millisecond
	f := NewFailover(clientBus, seg, "svc.calc", opts)
	defer f.Close()
	if _, err := f.Invoke("add", int64(1), int64(1)); err != nil {
		t.Fatal(err)
	}
	_ = only.Close()
	if _, err := f.Invoke("add", int64(1), int64(1)); !errors.Is(err, ErrTimeout) {
		t.Errorf("invoke with no survivor = %v, want ErrTimeout", err)
	}
	// Lazy rebinding works once a server returns.
	startCalc(t, seg, "revived", ServerOptions{})
	got, err := f.Invoke("add", int64(2), int64(2))
	if err != nil || got != int64(4) {
		t.Errorf("post-revival invoke = %v, %v", got, err)
	}
	_ = f.Close()
	if _, err := f.Invoke("add", int64(1), int64(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("invoke after close = %v", err)
	}
}

func TestDialAllScatterGather(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	s1 := startCalc(t, seg, "s1", ServerOptions{})
	s2 := startCalc(t, seg, "s2", ServerOptions{})
	clientBus := newBus(t, seg, "client")
	clients, err := DialAll(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	if len(clients) != 2 {
		t.Fatalf("clients = %d, want 2", len(clients))
	}
	addrs := map[string]bool{clients[0].ServerAddr(): true, clients[1].ServerAddr(): true}
	if !addrs[s1.Addr()] || !addrs[s2.Addr()] {
		t.Errorf("connected to %v, want both servers", addrs)
	}
	// Scatter-gather: every server answers.
	results, errs := InvokeAll(clients, "add", int64(20), int64(22))
	for i := range clients {
		if errs[i] != nil || results[i] != int64(42) {
			t.Errorf("client %d: %v, %v", i, results[i], errs[i])
		}
	}
	if s1.Invoked() != 1 || s2.Invoked() != 1 {
		t.Errorf("invocations: s1=%d s2=%d", s1.Invoked(), s2.Invoked())
	}
}

func TestDialAllNoServers(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	clientBus := newBus(t, seg, "client")
	opts := dialOpts()
	opts.DiscoveryWindow = 50 * time.Millisecond
	if _, err := DialAll(clientBus, seg, "svc.none", opts); !errors.Is(err, ErrNoServer) {
		t.Errorf("DialAll error = %v", err)
	}
}

// TestTDLBackedService demonstrates the paper's "all high-level application
// behavior is encoded in the interpreted language" (§5.1): the RMI handler
// dispatches straight into TDL generic functions.
func TestTDLBackedService(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	serverBus := newBus(t, seg, "tdl-server")
	interp := tdl.New(serverBus.Registry(), nil)
	if _, err := interp.EvalString(`
	  (defclass Greeter () ((greeting string)))
	  (define the-greeter (make-instance 'Greeter 'greeting "hello"))
	  (defmethod greet ((g Greeter) name)
	    (concat (slot-value g 'greeting) ", " name "!"))
	`); err != nil {
		t.Fatal(err)
	}
	iface := mop.MustNewClass("GreeterService", nil, nil, []mop.Operation{
		{Name: "greet", Params: []mop.Param{{Name: "name", Type: mop.String}}, Result: mop.String},
	})
	self, err := interp.EvalString("the-greeter")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(serverBus, seg, "svc.greeter", iface,
		func(op string, args []mop.Value) (mop.Value, error) {
			return interp.Call(op, append([]mop.Value{self}, args...)...)
		}, ServerOptions{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clientBus := newBus(t, seg, "client")
	c, err := Dial(clientBus, seg, "svc.greeter", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Invoke("greet", "trader")
	if err != nil || got != "hello, trader!" {
		t.Fatalf("greet = %v, %v", got, err)
	}
	// Live behavior change: redefine the method in the running server.
	if _, err := interp.EvalString(`(defmethod greet ((g Greeter) name)
	    (concat "v2: " name))`); err != nil {
		t.Fatal(err)
	}
	got, err = c.Invoke("greet", "trader")
	if err != nil || got != "v2: trader" {
		t.Fatalf("post-redefinition greet = %v, %v", got, err)
	}
}

func TestElectionSingleLeader(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	eopts := ElectionOptions{BeaconInterval: 10 * time.Millisecond}
	var servers []*Server
	var elections []*Election
	for i := 0; i < 3; i++ {
		bus := newBus(t, seg, fmt.Sprintf("member%d", i))
		s, err := NewServer(bus, seg, "svc.calc", calcIface(), calcHandler,
			ServerOptions{Standby: true, Reliable: fastReliable()})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		e, err := NewElection(bus, s, "svc.calc", eopts)
		if err != nil {
			t.Fatal(err)
		}
		elections = append(elections, e)
	}
	defer func() {
		for i := range elections {
			elections[i].Close()
			_ = servers[i].Close()
		}
	}()
	// Exactly one leader emerges once everyone hears everyone.
	leaders := func() (int, int) {
		n, idx := 0, -1
		for i, e := range elections {
			if e.Leading() {
				n++
				idx = i
			}
		}
		return n, idx
	}
	deadline := time.After(10 * time.Second)
	for {
		n, _ := leaders()
		full := elections[0].Members() == 3 && elections[1].Members() == 3 && elections[2].Members() == 3
		if n == 1 && full {
			break
		}
		select {
		case <-deadline:
			n, _ := leaders()
			t.Fatalf("leaders = %d, members = %d/%d/%d", n,
				elections[0].Members(), elections[1].Members(), elections[2].Members())
		case <-time.After(3 * time.Millisecond):
		}
	}
	// A client binds to the elected leader.
	clientBus := newBus(t, seg, "client")
	c, err := Dial(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Invoke("add", int64(5), int64(6))
	if err != nil || got != int64(11) {
		t.Fatalf("invoke = %v, %v", got, err)
	}
	_ = c.Close()

	// Kill the leader: another member takes over and serves new clients.
	_, leaderIdx := leaders()
	elections[leaderIdx].Close()
	_ = servers[leaderIdx].Close()
	deadline = time.After(10 * time.Second)
	for {
		n := 0
		for i, e := range elections {
			if i != leaderIdx && e.Leading() {
				n++
			}
		}
		if n == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no successor elected")
		case <-time.After(3 * time.Millisecond):
		}
	}
	c2, err := Dial(clientBus, seg, "svc.calc", dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err = c2.Invoke("add", int64(7), int64(8))
	if err != nil || got != int64(15) {
		t.Fatalf("post-failover invoke = %v, %v", got, err)
	}
}
