package daemon

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/transport"
)

// newPairLanes is newPair with an explicit lane count on both daemons.
func newPairLanes(t *testing.T, lanes int) (*Daemon, *Daemon) {
	t.Helper()
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	seg := transport.NewSimSegment(cfg)
	rcfg := reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
	epA, err := seg.NewEndpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := seg.NewEndpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{DeliveryLanes: lanes}
	da, db := New(epA, rcfg, opts), New(epB, rcfg, opts)
	t.Cleanup(func() {
		_ = da.Close()
		_ = db.Close()
		_ = seg.Close()
	})
	return da, db
}

// lanedSubjects returns n concrete subjects that land on n distinct lanes
// of a lanes-wide daemon, so a test can force traffic across every lane.
func lanedSubjects(t *testing.T, lanes, n int) []subject.Subject {
	t.Helper()
	out := make([]subject.Subject, 0, n)
	used := make(map[int]bool)
	for i := 0; len(out) < n && i < 10000; i++ {
		s := subject.MustParse(fmt.Sprintf("lane%d.x.data", i))
		if idx := s.LaneIndex(lanes); !used[idx] {
			used[idx] = true
			out = append(out, s)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d subjects on distinct lanes of %d", n, lanes)
	}
	return out
}

func TestResolveLanes(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	if want > maxAutoLanes {
		want = maxAutoLanes
	}
	cases := []struct{ in, want int }{
		{0, want},
		{1, 1},
		{3, 3},
		{-5, 1},
		{maxLanes + 100, maxLanes},
	}
	for _, c := range cases {
		if got := resolveLanes(c.in); got != c.want {
			t.Errorf("resolveLanes(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestLaneWiring checks the structural invariants: lanes > 1 builds one
// inbound worker per lane, DeliveryLanes == 1 runs the seed path with no
// worker pool at all, and every client gets one queue column per lane.
func TestLaneWiring(t *testing.T) {
	da, _ := newPairLanes(t, 4)
	if da.Lanes() != 4 || len(da.workers) != 4 {
		t.Fatalf("lanes=%d workers=%d, want 4/4", da.Lanes(), len(da.workers))
	}
	c, err := da.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.lanes) != 4 {
		t.Fatalf("client columns = %d, want 4", len(c.lanes))
	}

	ds, _ := newPairLanes(t, 1)
	if ds.Lanes() != 1 || ds.workers != nil {
		t.Fatalf("single-lane daemon: lanes=%d workers=%v, want 1/nil", ds.Lanes(), ds.workers)
	}
}

// TestCrossLaneSenderFIFO is the ordering regression for the sharded
// engine: one sender interleaves publications on subjects that hash to
// different delivery lanes, and a ">" subscriber on a multi-lane receiver
// must still see them in exact publish order. The strict-ticket merge in
// popLocked (plus the sender-keyed inbound worker) is what this pins down;
// a per-lane pop without the ticket order would interleave arbitrarily.
func TestCrossLaneSenderFIFO(t *testing.T) {
	const lanes = 4
	da, db := newPairLanes(t, lanes)
	subjects := lanedSubjects(t, lanes, 3)

	cb, err := db.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.Subscribe(subject.MustParsePattern(">")); err != nil {
		t.Fatal(err)
	}
	// Let the interest advertisement land so nothing is dropped unrouted
	// (raw daemons broadcast regardless; this is just determinism for the
	// first delivery's latency).
	time.Sleep(20 * time.Millisecond)

	const total = 300
	for i := 0; i < total; i++ {
		s := subjects[i%len(subjects)]
		if err := da.Publish(s, []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = da.Flush()
	for i := 0; i < total; i++ {
		dv := nextDelivery(t, cb, 10*time.Second)
		if got, want := string(dv.Payload), fmt.Sprintf("%d", i); got != want {
			t.Fatalf("delivery %d out of order: payload %q (subject %s)", i, got, dv.Subject)
		}
		if want := subjects[i%len(subjects)].String(); dv.Subject.String() != want {
			t.Fatalf("delivery %d subject = %s, want %s", i, dv.Subject, want)
		}
	}
	if cb.Pending() != 0 {
		t.Fatalf("pending = %d after full drain", cb.Pending())
	}
}

// TestCrossLaneLocalFIFO is the same ordering pin for the local loopback
// path: a single local publisher alternating lanes must be observed in
// publish order by a local ">" subscriber.
func TestCrossLaneLocalFIFO(t *testing.T) {
	const lanes = 4
	da, _ := newPairLanes(t, lanes)
	subjects := lanedSubjects(t, lanes, 3)
	c, err := da.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(subject.MustParsePattern(">")); err != nil {
		t.Fatal(err)
	}
	const total = 300
	for i := 0; i < total; i++ {
		if err := da.Publish(subjects[i%len(subjects)], []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < total; i++ {
		dv := nextDelivery(t, c, 5*time.Second)
		if got, want := string(dv.Payload), fmt.Sprintf("%d", i); got != want {
			t.Fatalf("delivery %d out of order: payload %q", i, got)
		}
	}
}

// TestSingleLaneGoldenEquivalence runs the cross-lane workload on a
// DeliveryLanes=1 daemon — the seed path — and checks the observable
// behavior is identical: exact publish order, exact counts, no worker
// pool. This is the "1 lane behaves like the pre-lane daemon" contract.
func TestSingleLaneGoldenEquivalence(t *testing.T) {
	da, db := newPairLanes(t, 1)
	if da.workers != nil || db.workers != nil {
		t.Fatal("single-lane daemons must not run inbound workers")
	}
	subjects := []subject.Subject{
		subject.MustParse("lane0.x.data"),
		subject.MustParse("lane1.x.data"),
		subject.MustParse("lane2.x.data"),
	}
	cb, err := db.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.Subscribe(subject.MustParsePattern(">")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	const total = 200
	for i := 0; i < total; i++ {
		if err := da.Publish(subjects[i%len(subjects)], []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_ = da.Flush()
	for i := 0; i < total; i++ {
		dv := nextDelivery(t, cb, 10*time.Second)
		if got, want := string(dv.Payload), fmt.Sprintf("%d", i); got != want {
			t.Fatalf("delivery %d out of order: payload %q", i, got)
		}
	}
	st := db.Stats()
	if st.DeliveredLocal != total || st.Inbound < total {
		t.Fatalf("stats = %+v, want DeliveredLocal=%d", st, total)
	}
}

// TestLaneDepthsCoherent checks the monitoring view of a backlog spread
// across lanes: with a stalled client, the per-lane depth gauges sum to
// the client's Pending count, and a full drain returns every gauge to
// zero (no delivery is ever torn across, or leaked into, a lane gauge).
func TestLaneDepthsCoherent(t *testing.T) {
	const lanes = 4
	da, _ := newPairLanes(t, lanes)
	subjects := lanedSubjects(t, lanes, 3)
	c, err := da.NewClient("stalled")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(subject.MustParsePattern(">")); err != nil {
		t.Fatal(err)
	}
	const total = 90
	for i := 0; i < total; i++ {
		if err := da.Publish(subjects[i%len(subjects)], []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	depths := da.LaneDepths()
	var sum int64
	nonzero := 0
	for _, d := range depths {
		sum += d
		if d > 0 {
			nonzero++
		}
	}
	if sum != total || c.Pending() != total {
		t.Fatalf("lane depth sum = %d, Pending = %d, want %d (depths %v)", sum, c.Pending(), total, depths)
	}
	if nonzero < 2 {
		t.Fatalf("backlog not spread across lanes: %v", depths)
	}
	for i := 0; i < total; i++ {
		if _, ok := c.TryNext(); !ok {
			t.Fatalf("TryNext ran dry at %d", i)
		}
	}
	for i, d := range da.LaneDepths() {
		if d != 0 {
			t.Fatalf("lane %d depth = %d after drain", i, d)
		}
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", c.Pending())
	}
}

// TestGuaranteedExactlyOnceAcrossLanes pins the (origin, id) dedup
// contract on a multi-lane receiver: the publisher daemon retransmits the
// same guaranteed publication several times (different inbound batches),
// and the subscriber sees it exactly once.
func TestGuaranteedExactlyOnceAcrossLanes(t *testing.T) {
	da, db := newPairLanes(t, 4)
	cb, err := db.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.Subscribe(subject.MustParsePattern("g.>")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	s := subject.MustParse("g.x")
	for i := 0; i < 5; i++ {
		if err := da.PublishGuaranteed(s, []byte("once"), 42); err != nil {
			t.Fatal(err)
		}
		_ = da.Flush()
	}
	dv := nextDelivery(t, cb, 10*time.Second)
	if !dv.Guaranteed || dv.ID != 42 || string(dv.Payload) != "once" {
		t.Fatalf("delivery = %+v", dv)
	}
	time.Sleep(50 * time.Millisecond)
	if cb.Pending() != 0 {
		t.Fatalf("duplicate guaranteed delivery: pending = %d", cb.Pending())
	}
}
