// Package daemon implements the per-host Information Bus daemon. "In our
// implementation of subject-based addressing, we use a daemon on every
// host. Each application registers with its local daemon, and tells the
// daemon to which subjects it has subscribed. The daemon forwards each
// message to each application that has subscribed. It uses the subject
// contained in the message to decide which application receives which
// message." (§3.1)
//
// One Daemon owns one reliable connection to the network segment. Local
// applications attach as Clients, subscribe with wildcard patterns, and
// receive matching publications — whether they originated remotely or from
// another application on the same host. The daemon also participates in
// the guaranteed-delivery handshake: it acknowledges guaranteed messages
// that it delivered to at least one local subscriber, and it periodically
// advertises its aggregate subscription interest for information routers.
package daemon

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"infobus/internal/bufpool"
	"infobus/internal/busproto"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
)

// Delivery is one publication handed to a subscribed client.
type Delivery struct {
	Subject subject.Subject
	Payload []byte
	// From is the transport address of the publishing daemon.
	From string
	// Guaranteed marks a guaranteed-delivery publication; ID is its
	// publisher-side ledger identifier.
	Guaranteed bool
	ID         uint64
	// TraceID and Trace carry the per-hop telemetry trace when the
	// publication was sampled (Options.TracePeriod); Trace is empty
	// otherwise. The receiving daemon's own hop is already appended,
	// followed by the intra-daemon stage hops (lane enqueue, lane pop).
	TraceID uint64
	Trace   []busproto.TraceHop
}

// appendHop records an intra-node stage hop on a traced delivery, with
// the same copy-on-append and cap-and-drop discipline as
// busproto.Envelope.AppendStageHop (queued deliveries share the decoded
// trace slice, so append-in-place would race sibling subscribers).
func (dv *Delivery) appendHop(kind byte, node string, at int64) {
	if dv.TraceID == 0 || len(dv.Trace) >= busproto.MaxTraceHops {
		return
	}
	trace := make([]busproto.TraceHop, len(dv.Trace), len(dv.Trace)+1)
	copy(trace, dv.Trace)
	dv.Trace = append(trace, busproto.TraceHop{Kind: kind, Node: node, At: at})
}

// Daemon errors.
var (
	ErrClosed = errors.New("daemon: closed")
)

// InterestInterval is how often a daemon re-broadcasts its aggregate
// subscription interest for information routers. Advertisements are also
// sent immediately on every subscription change.
const InterestInterval = 250 * time.Millisecond

// Daemon routes publications between the network and local clients.
type Daemon struct {
	conn     *reliable.Conn
	identity string // globally unique origin token for guaranteed acks
	// tokens is the daemon's seeded random stream (identity, trace bases,
	// Token); see lanes.go.
	tokens *tokenSource

	// Delivery lanes (lanes.go): match-cache shards + per-lane telemetry.
	// Immutable after construction. workers is the inbound pool, nil when
	// len(lanes) == 1 (the seed path: inline handling on recvLoop).
	lanes   []*lane
	workers []*inWorker
	inWg    sync.WaitGroup
	// closedFlag mirrors closed for the publish hot path, which must not
	// take d.mu (it would serialize concurrent local publishers).
	closedFlag atomic.Bool

	mu      sync.Mutex
	subs    *subject.Trie[*Client]
	clients map[*Client]struct{}
	onAck   func(id uint64, from string)
	// foster routes guaranteed-delivery acks addressed to other origins —
	// crashed publishers this daemon is replaying for (qledger recovery).
	// Nil until the first FosterAcks call, so the ack path costs an
	// untouched daemon nothing.
	foster map[string]func(id uint64, from string)
	closed bool
	done   chan struct{}
	kick   chan struct{} // debounced interest re-advertisement requests
	wg     sync.WaitGroup

	// Cached, aggregated interest advertisement; recomputed only when the
	// subscription set changes (a full trie walk is too expensive to run
	// on every periodic re-advertisement with tens of thousands of
	// subscriptions).
	advCache []string
	advDirty bool

	// Guaranteed-delivery duplicate suppression: a publisher retransmits
	// until acknowledged, so the same (origin, id) may arrive many times;
	// consumers see it once ("if there is no failure, then the message
	// will be delivered exactly once", §3.1). guarRing is a fixed-capacity
	// FIFO over the set: once full, recording a new key overwrites (and
	// un-sees) the oldest in place, so eviction never re-slices and never
	// pins dead backing arrays.
	guarSeen map[guarKey]struct{}
	guarRing []guarKey
	guarHead int // index of the oldest ring entry once the ring is full
	guarCap  int // captured from guarSeenCap at construction
	// guarInflight claims a (origin, id) for the worker currently fanning
	// it out, closing the check-then-deliver window between guarSeen reads:
	// with several inbound workers, the origin's retransmission and a
	// recovery replayer's copy can arrive on different workers at once, and
	// without the claim both would deliver. Lazily allocated.
	guarInflight map[guarKey]struct{}

	// interner caches subject.Parse results for inbound publications;
	// workloads repeat subjects heavily, so the per-message split becomes a
	// map hit.
	interner *subject.Interner

	metrics     *telemetry.Registry
	ctr         counters
	tracePeriod uint64
	traceBase   uint64        // random base xored into trace ids
	traceNode   string        // hop name this daemon records in traces
	pubSeq      atomic.Uint64 // local publication sequence, drives sampling

	// Health tier (nil when disabled): the alarm engine watching this
	// daemon's clients and dedup ring, and the flight recorder notable
	// events land in. Watch samples are atomic loads of gauges the
	// delivery path already maintains, so detection costs the hot path
	// nothing beyond those gauge updates.
	health        *telemetry.Engine
	rec           *telemetry.Recorder
	slowDepth     int64
	guarSeenGauge *telemetry.Gauge
}

// guarKey identifies a guaranteed publication: the publisher's origin token
// plus its ledger id. A struct key keeps dedup lookups allocation-free
// (string concatenation per inbound retry used to dominate the ack path).
type guarKey struct {
	origin string
	id     uint64
}

// guarSeenCap bounds the duplicate-suppression window. A variable so tests
// can shrink it to exercise eviction; each Daemon captures the value at
// construction.
var guarSeenCap = 8192

// Stats counts daemon-level events.
type Stats struct {
	PublishedLocal uint64 // publications submitted by local clients
	Inbound        uint64 // publications received from the network
	DeliveredLocal uint64 // deliveries to local clients (fan-out counted)
	NoSubscriber   uint64 // inbound publications matching no local client
	GuarAcksSent   uint64
	GuarAcksRecv   uint64
	CorruptDropped uint64
}

// counters holds the daemon's telemetry handles, resolved once at
// construction so the delivery path never touches the registry lock.
type counters struct {
	publishedLocal, inbound, deliveredLocal, noSubscriber *telemetry.Counter
	guarAcksSent, guarAcksRecv, corruptDropped            *telemetry.Counter
	traced                                                *telemetry.Counter
	traceE2E                                              *telemetry.Histogram
}

// Options tune the daemon beyond the reliable protocol.
type Options struct {
	// Metrics is the telemetry registry the daemon's counters live in
	// (shared with the host's other components so one "_sys.stats.<node>"
	// object covers the whole host). Nil creates a private registry.
	Metrics *telemetry.Registry
	// TracePeriod enables per-hop message tracing: every TracePeriod-th
	// local publication is sent as a traced envelope carrying a trace id
	// and hop timestamps (publisher daemon, routers crossed, consumer
	// daemon). 0 disables tracing; untraced publications are byte-identical
	// to the legacy envelope format. Sampling is a deterministic counter,
	// not a random draw, so the hot path stays flat.
	TracePeriod uint64
	// Node names this daemon in trace hop records ("pubhost", not
	// "sim:1"); transport addresses are only unique per segment, so a
	// trace crossing routers needs the host-level name. Empty falls back
	// to the transport address.
	Node string
	// Health is the alarm engine this daemon registers its watches with
	// (per-client queue depth, dedup-ring pressure). Nil disables
	// detection.
	Health *telemetry.Engine
	// Recorder is the process flight recorder; notable daemon events
	// (corrupt drops, sampled trace completions) are recorded into it.
	// Nil disables recording.
	Recorder *telemetry.Recorder
	// SlowConsumerDepth is the client queue depth at which the
	// "slow-consumer" alarm raises. Zero means the telemetry default
	// (1024).
	SlowConsumerDepth int64
	// DeliveryLanes shards subscription matching and client delivery
	// queues across this many lanes keyed by subject-prefix hash (see
	// lanes.go). 0 — the default — selects min(GOMAXPROCS, 8). 1 disables
	// sharding: a single cache shard, a single queue column, inline
	// inbound handling — behaviorally the pre-lane path.
	DeliveryLanes int
}

// New starts a daemon over a transport endpoint. cfg tunes the underlying
// reliable protocol; opts wires telemetry.
func New(ep transport.Endpoint, cfg reliable.Config, opts Options) *Daemon {
	metrics := opts.Metrics
	if metrics == nil {
		metrics = telemetry.NewRegistry()
	}
	if cfg.Metrics == nil {
		// Fold the protocol counters into the same registry so the host's
		// stats object covers both layers.
		cfg.Metrics = metrics
	}
	if cfg.Recorder == nil {
		// The protocol layer shares the process flight recorder.
		cfg.Recorder = opts.Recorder
	}
	// The token stream seeds from the same knob as the reliable epoch
	// (reliable.Config.Seed): a fixed per-host seed makes identities and
	// trace bases reproducible across netsim runs, zero stays unique.
	tokens := newTokenSource(cfg.Seed)
	d := &Daemon{
		conn:        reliable.New(ep, cfg),
		identity:    fmt.Sprintf("%s#%016x", ep.Addr(), tokens.Next()),
		tokens:      tokens,
		lanes:       newLanes(resolveLanes(opts.DeliveryLanes), metrics),
		subs:        subject.NewTrie[*Client](),
		clients:     make(map[*Client]struct{}),
		done:        make(chan struct{}),
		kick:        make(chan struct{}, 1),
		guarSeen:    make(map[guarKey]struct{}),
		guarCap:     guarSeenCap,
		interner:    subject.NewInterner(0),
		advDirty:    true,
		metrics:     metrics,
		tracePeriod: opts.TracePeriod,
		traceNode:   opts.Node,
		traceBase:   tokens.Next(),
		health:      opts.Health,
		rec:         opts.Recorder,
		slowDepth:   opts.SlowConsumerDepth,
	}
	if d.traceNode == "" {
		d.traceNode = d.conn.Addr()
	}
	if d.slowDepth <= 0 {
		d.slowDepth = telemetry.HealthConfig{}.WithDefaults().SlowConsumerDepth
	}
	d.ctr = counters{
		publishedLocal: metrics.Counter("daemon.published_local"),
		inbound:        metrics.Counter("daemon.inbound"),
		deliveredLocal: metrics.Counter("daemon.delivered_local"),
		noSubscriber:   metrics.Counter("daemon.no_subscriber"),
		guarAcksSent:   metrics.Counter("daemon.guar_acks_sent"),
		guarAcksRecv:   metrics.Counter("daemon.guar_acks_recv"),
		corruptDropped: metrics.Counter("daemon.corrupt_dropped"),
		traced:         metrics.Counter("daemon.traced"),
		traceE2E:       metrics.Histogram("daemon.trace_e2e_ns"),
	}
	d.guarSeenGauge = metrics.Gauge("daemon.guar_seen")
	if d.health != nil {
		// Dedup-ring pressure: a ring running near capacity is at risk of
		// un-seeing a publication still being retransmitted, which would
		// surface as a duplicate delivery. Raise at 80% of capacity.
		d.health.Watch(telemetry.WatchConfig{
			Kind:  "dedup-pressure",
			Raise: int64(d.guarCap) * 8 / 10,
		}, d.guarSeenGauge.Load)
	}
	if len(d.lanes) > 1 {
		// Inbound worker pool, one worker per lane, keyed by sender hash
		// in recvLoop: a sender's messages always land on one worker, in
		// arrival order, so per-sender FIFO survives the parallelism.
		d.workers = make([]*inWorker, len(d.lanes))
		d.inWg.Add(len(d.workers))
		for i := range d.workers {
			w := &inWorker{
				ch:       make(chan reliable.Message, workerQueueDepth),
				interner: subject.NewInterner(0),
			}
			d.workers[i] = w
			go d.workerLoop(w)
		}
	}
	d.wg.Add(2)
	go d.recvLoop()
	go d.interestLoop()
	return d
}

// Metrics returns the daemon's telemetry registry.
func (d *Daemon) Metrics() *telemetry.Registry { return d.metrics }

// Identity returns the daemon's unique origin token. Guaranteed-delivery
// acknowledgements carry it so routers can steer them back to this daemon.
func (d *Daemon) Identity() string { return d.identity }

// Token draws the next value from the daemon's seeded random-token stream
// (reliable.Config.Seed). Host-level components (discovery round tokens,
// election tokens, random server picks) draw here instead of the global
// math/rand source, so a seeded netsim run is deterministic end to end.
func (d *Daemon) Token() uint64 { return d.tokens.Next() }

// Lanes returns the effective delivery-lane count.
func (d *Daemon) Lanes() int { return len(d.lanes) }

// TopSubjects merges the per-lane subject-family accounting tables and
// returns the heaviest k families by routed publications (k <= 0 keeps
// all tabled families). Accuracy is space-saving: counts may overestimate
// by at most each entry's Err.
func (d *Daemon) TopSubjects(k int) []telemetry.TopKEntry {
	tables := make([][]telemetry.TopKEntry, len(d.lanes))
	for i, ln := range d.lanes {
		tables[i] = ln.topk.Snapshot()
	}
	return telemetry.MergeTopK(k, tables...)
}

// LaneDepths returns a coherent per-lane snapshot of outstanding
// deliveries (the "daemon.lane<N>.depth" gauges). The gauges are atomics
// updated under their lane locks; the pass is repeated until two
// consecutive reads agree (bounded retries), the same cut discipline as
// Stats, so a monitor never sees a delivery torn across two lanes.
func (d *Daemon) LaneDepths() []int64 {
	read := func(out []int64) {
		for i, ln := range d.lanes {
			out[i] = ln.depth.Load()
		}
	}
	prev := make([]int64, len(d.lanes))
	cur := make([]int64, len(d.lanes))
	read(prev)
	for attempt := 0; attempt < 3; attempt++ {
		read(cur)
		equal := true
		for i := range cur {
			if cur[i] != prev[i] {
				equal = false
				break
			}
		}
		if equal {
			return cur
		}
		prev, cur = cur, prev
	}
	return prev
}

// Addr returns the daemon's transport address (the publisher identity
// subscribers see).
func (d *Daemon) Addr() string { return d.conn.Addr() }

// Conn exposes the underlying reliable connection for protocol statistics.
func (d *Daemon) Conn() *reliable.Conn { return d.conn }

// Stats returns a snapshot of the daemon counters.
//
// The counters live in the telemetry registry as monotone atomics, so the
// snapshot is taken in the same consistency domain as the counters
// themselves: all seven are loaded in one pass, and the pass is repeated
// until two consecutive reads agree (bounded retries). On a quiescent
// daemon the result is exact; under load it is a consistent cut whose
// fields differ from any instant only by events in flight during the call.
func (d *Daemon) Stats() Stats {
	read := func() Stats {
		return Stats{
			PublishedLocal: d.ctr.publishedLocal.Load(),
			Inbound:        d.ctr.inbound.Load(),
			DeliveredLocal: d.ctr.deliveredLocal.Load(),
			NoSubscriber:   d.ctr.noSubscriber.Load(),
			GuarAcksSent:   d.ctr.guarAcksSent.Load(),
			GuarAcksRecv:   d.ctr.guarAcksRecv.Load(),
			CorruptDropped: d.ctr.corruptDropped.Load(),
		}
	}
	prev := read()
	for i := 0; i < 3; i++ {
		cur := read()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// OnGuaranteeAck registers the callback invoked when a guaranteed
// publication of this daemon is acknowledged by some consumer. Used by the
// bus layer to mark ledger entries delivered.
func (d *Daemon) OnGuaranteeAck(f func(id uint64, from string)) {
	d.mu.Lock()
	d.onAck = f
	d.mu.Unlock()
}

// Close shuts the daemon and all its clients down.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.closedFlag.Store(true)
	close(d.done)
	clients := make([]*Client, 0, len(d.clients))
	for c := range d.clients {
		clients = append(clients, c)
	}
	d.mu.Unlock()
	err := d.conn.Close()
	d.wg.Wait()
	for _, c := range clients {
		c.shutdown()
	}
	return err
}

// traceSample decides whether the next local publication carries a trace
// and, if so, stamps e with the trace id and the publisher hop.
func (d *Daemon) traceSample(e *busproto.Envelope) {
	if d.tracePeriod == 0 {
		return
	}
	seq := d.pubSeq.Add(1)
	if seq%d.tracePeriod != 0 {
		return
	}
	switch e.Kind {
	case busproto.KindPublish:
		e.Kind = busproto.KindPublishTraced
	case busproto.KindGuaranteed:
		e.Kind = busproto.KindGuaranteedTraced
	case busproto.KindPublishCompact:
		e.Kind = busproto.KindPublishCompactTraced
	case busproto.KindGuaranteedCompact:
		e.Kind = busproto.KindGuaranteedCompactTraced
	default:
		return
	}
	e.TraceID = d.traceBase ^ seq
	e.AppendHop(d.traceNode, time.Now().UnixNano())
	d.ctr.traced.Inc()
}

// Publish sends an ordinary reliable publication and routes it to local
// subscribers (network broadcast does not loop back).
func (d *Daemon) Publish(subj subject.Subject, payload []byte) error {
	return d.publishData(subj, payload, busproto.KindPublish)
}

// PublishCompact sends an ordinary reliable publication whose payload uses
// the compact dictionary wire format (wire.SendDict). The envelope kind
// tells receivers and routers that fingerprint resolution may be needed;
// everything else is identical to Publish.
func (d *Daemon) PublishCompact(subj subject.Subject, payload []byte) error {
	return d.publishData(subj, payload, busproto.KindPublishCompact)
}

func (d *Daemon) publishData(subj subject.Subject, payload []byte, kind byte) error {
	e := busproto.Envelope{Kind: kind, Subject: subj.String(), Payload: payload}
	d.traceSample(&e)
	// Pooled encode: Conn.Publish copies the envelope into its retransmit
	// window before returning, so the buffer can go straight back.
	buf := bufpool.Get(len(e.Subject) + len(payload) + 16)
	env := busproto.AppendEncode((*buf)[:0], e)
	*buf = env
	defer bufpool.Put(buf)
	// Atomic closed check: taking d.mu here would serialize every local
	// publisher on the host through one lock for a boolean read.
	if d.closedFlag.Load() {
		return ErrClosed
	}
	d.ctr.publishedLocal.Inc()
	if err := d.conn.Publish(env); err != nil {
		return err
	}
	d.routeLocal(Delivery{Subject: subj, Payload: payload, From: d.Addr(), TraceID: e.TraceID, Trace: e.Trace})
	return nil
}

// PublishGuaranteed sends a guaranteed publication carrying the caller's
// ledger id. The caller is responsible for logging before calling and for
// retransmitting until the ack callback fires (see the bus layer).
func (d *Daemon) PublishGuaranteed(subj subject.Subject, payload []byte, id uint64) error {
	_, err := d.publishGuaranteed(subj, payload, id, busproto.KindGuaranteed, nil)
	return err
}

// PublishGuaranteedCompact is PublishGuaranteed for a compact-format
// payload (see PublishCompact).
func (d *Daemon) PublishGuaranteedCompact(subj subject.Subject, payload []byte, id uint64) error {
	_, err := d.publishGuaranteed(subj, payload, id, busproto.KindGuaranteedCompact, nil)
	return err
}

// PublishGuaranteedTraced is PublishGuaranteed with the guaranteed-path
// stage hops the bus layer recorded before dissemination (ledger stage /
// group commit / fsync, replication chunk): when this publication is
// sampled for tracing, pre is prepended ahead of the publisher hop. It
// reports the assigned trace id (0 when unsampled) so the caller can
// attach late stages — the quorum ack lands after the publish — as a
// sidecar trace (telemetry.SysTrace).
func (d *Daemon) PublishGuaranteedTraced(subj subject.Subject, payload []byte, id uint64, compact bool, pre []busproto.TraceHop) (uint64, error) {
	kind := byte(busproto.KindGuaranteed)
	if compact {
		kind = busproto.KindGuaranteedCompact
	}
	return d.publishGuaranteed(subj, payload, id, kind, pre)
}

func (d *Daemon) publishGuaranteed(subj subject.Subject, payload []byte, id uint64, kind byte, pre []busproto.TraceHop) (uint64, error) {
	e := busproto.Envelope{
		Kind: kind, ID: id, Origin: d.identity,
		Subject: subj.String(), Payload: payload,
	}
	// Pre-hops are only transmitted when traceSample picks this
	// publication: it appends the publisher hop after them, and the
	// untraced encode ignores Trace entirely.
	e.Trace = pre
	d.traceSample(&e)
	if e.TraceID == 0 {
		e.Trace = nil // unsampled: the local fan-out must not carry pre
	}
	buf := bufpool.Get(len(e.Origin) + len(e.Subject) + len(payload) + 32)
	env := busproto.AppendEncode((*buf)[:0], e)
	*buf = env
	defer bufpool.Put(buf)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return 0, ErrClosed
	}
	onAck := d.onAck
	d.mu.Unlock()
	d.ctr.publishedLocal.Inc()
	if err := d.conn.Publish(env); err != nil {
		return e.TraceID, err
	}
	claimed, seen := d.guarBegin(d.identity, id)
	if seen || !claimed {
		// A retransmission (already delivered locally — remote daemons that
		// missed it will take it from the broadcast), or the retrier racing
		// the original publish mid-delivery.
		return e.TraceID, nil
	}
	delivered := d.routeLocal(Delivery{
		Subject: subj, Payload: payload, From: d.Addr(), Guaranteed: true, ID: id,
		TraceID: e.TraceID, Trace: e.Trace,
	})
	d.guarEnd(d.identity, id, delivered > 0)
	if delivered > 0 && onAck != nil {
		// A local subscriber consumed it: self-acknowledge.
		onAck(id, d.Addr())
	}
	return e.TraceID, nil
}

// PublishGuaranteedOrigin re-publishes a guaranteed publication on behalf
// of another publisher: the envelope carries origin (the crashed
// publisher's identity token) instead of this daemon's, so consumer-side
// (origin, id) dedup treats the replay and any original transmission as
// one publication. compact marks a payload in the compact dictionary
// format. Acknowledgements come back to this daemon (acks are unicast to
// the sender) and are routed through FosterAcks.
func (d *Daemon) PublishGuaranteedOrigin(subj subject.Subject, payload []byte, id uint64, origin string, compact bool) error {
	kind := byte(busproto.KindGuaranteed)
	if compact {
		kind = busproto.KindGuaranteedCompact
	}
	e := busproto.Envelope{
		Kind: kind, ID: id, Origin: origin,
		Subject: subj.String(), Payload: payload,
	}
	d.traceSample(&e)
	if e.Traced() {
		// Mark the hop as a recovery replay: the timeline downstream
		// monitors assemble must distinguish a replayed publication from
		// the origin's own transmission.
		e.AppendStageHop(busproto.HopRecoveryReplay, d.traceNode, time.Now().UnixNano())
	}
	buf := bufpool.Get(len(e.Origin) + len(e.Subject) + len(payload) + 32)
	env := busproto.AppendEncode((*buf)[:0], e)
	*buf = env
	defer bufpool.Put(buf)
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	foster := d.foster[origin]
	d.mu.Unlock()
	d.ctr.publishedLocal.Inc()
	if err := d.conn.Publish(env); err != nil {
		return err
	}
	claimed, seen := d.guarBegin(origin, id)
	if seen || !claimed {
		return nil
	}
	delivered := d.routeLocal(Delivery{
		Subject: subj, Payload: payload, From: d.Addr(), Guaranteed: true, ID: id,
		TraceID: e.TraceID, Trace: e.Trace,
	})
	d.guarEnd(origin, id, delivered > 0)
	if delivered > 0 && foster != nil {
		// A local subscriber consumed it: self-acknowledge to the
		// fostering replayer.
		foster(id, d.Addr())
	}
	return nil
}

// FosterAcks routes guaranteed-delivery acknowledgements addressed to
// origin — a publisher this daemon is replaying for — to f. One callback
// per origin; DropFosterAcks removes it.
func (d *Daemon) FosterAcks(origin string, f func(id uint64, from string)) {
	d.mu.Lock()
	if d.foster == nil {
		d.foster = make(map[string]func(id uint64, from string))
	}
	d.foster[origin] = f
	d.mu.Unlock()
}

// DropFosterAcks stops routing acks for origin.
func (d *Daemon) DropFosterAcks(origin string) {
	d.mu.Lock()
	delete(d.foster, origin)
	d.mu.Unlock()
}

// Flush forces batched publications onto the wire.
func (d *Daemon) Flush() error { return d.conn.Flush() }

// ---------------------------------------------------------------------------
// Clients

// Client is one local application's attachment to the daemon.
type Client struct {
	name string
	d    *Daemon
	// lanes is the client's delivery queue, one column per daemon lane:
	// lane workers and local publishers enqueue into the column their
	// subject hashes to, under that column's lock only. Consumers merge
	// the columns back into one stream in strict ticket order.
	lanes  []clientQueue
	signal chan struct{}

	// ticket is the client's arrival counter. Every enqueued delivery
	// draws the next ticket under its column's lock, so tickets are
	// strictly increasing within a column, hole-free overall, and a
	// sender's sequential publishes carry increasing tickets even when
	// their subjects hash to different columns — which is exactly the
	// per-sender FIFO a merged pop in ticket order preserves.
	ticket atomic.Uint64
	closed atomic.Bool

	// mu guards pats and popNext; it serializes concurrent consumers
	// (Next/TryNext) without ever being touched by enqueuers.
	mu      sync.Mutex
	pats    map[string]subject.Pattern
	popNext uint64 // last ticket popped; the next pop takes popNext+1

	// depth mirrors the total queued count (all columns) as an atomic so
	// the alarm engine can watch the client's backlog without locks. It is
	// the cross-lane aggregate on purpose: a stalled client must trip the
	// slow-consumer watermark no matter which lane its backlog sits on.
	depth atomic.Int64
	watch *telemetry.Watch // slow-consumer watch; nil when health is off
}

// clientQueue is one lane's column of a client's delivery queue.
// queue[head:] are the undelivered entries. The head index (instead of
// re-slicing queue[1:]) lets a drained column rewind to the start of its
// backing array, so a steady consumer costs zero appends after warm-up.
type clientQueue struct {
	mu     sync.Mutex
	queue  []queued
	head   int
	closed bool
	// n mirrors len(queue)-head so a pop can skip empty columns without
	// taking their locks.
	n atomic.Int32
}

// queued is one delivery plus its arrival ticket.
type queued struct {
	dv   Delivery
	tick uint64
}

// NewClient registers a local application with the daemon.
func (d *Daemon) NewClient(name string) (*Client, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	c := &Client{
		name:   name,
		d:      d,
		lanes:  make([]clientQueue, len(d.lanes)),
		signal: make(chan struct{}, 1),
		pats:   make(map[string]subject.Pattern),
	}
	if d.health != nil {
		c.watch = d.health.Watch(telemetry.WatchConfig{
			Kind:   "slow-consumer",
			Target: name,
			Raise:  d.slowDepth,
		}, c.depth.Load)
	}
	d.clients[c] = struct{}{}
	return c, nil
}

// Name returns the application name given at registration.
func (c *Client) Name() string { return c.name }

// Subscribe adds a subscription pattern. Matching publications — local or
// remote — will appear on Deliveries. Subscribing the same pattern twice
// is a no-op.
func (c *Client) Subscribe(pat subject.Pattern) error {
	c.d.mu.Lock()
	defer c.d.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() || c.d.closed {
		return ErrClosed
	}
	c.pats[pat.String()] = pat
	c.d.subs.Add(pat, c)
	c.d.advDirty = true
	c.d.kickInterest()
	return nil
}

// Unsubscribe removes a subscription pattern.
func (c *Client) Unsubscribe(pat subject.Pattern) error {
	c.d.mu.Lock()
	defer c.d.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() || c.d.closed {
		return ErrClosed
	}
	delete(c.pats, pat.String())
	c.d.subs.Remove(pat, c)
	c.d.advDirty = true
	c.d.kickInterest()
	return nil
}

// Patterns returns the client's current subscription patterns.
func (c *Client) Patterns() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.pats))
	for p := range c.pats {
		out = append(out, p)
	}
	return out
}

// Next blocks until a delivery is available or the client closes. ok is
// false after close once the queue is drained.
func (c *Client) Next(stop <-chan struct{}) (Delivery, bool) {
	for {
		c.mu.Lock()
		if dv, ok := c.popLocked(); ok {
			c.mu.Unlock()
			return dv, true
		}
		c.mu.Unlock()
		if c.closed.Load() {
			// Drained (the pop above found nothing) and closed.
			return Delivery{}, false
		}
		select {
		case <-c.signal:
		case <-stop:
			return Delivery{}, false
		}
	}
}

// popLocked removes and returns the oldest queued delivery: the one
// holding ticket popNext+1. Tickets are hole-free (drawn under the column
// lock that also appends) and strictly increasing within each column, so
// the wanted ticket — if enqueued — is at some column's head; scanning
// every non-empty column either finds it or proves the client's queue is
// empty up to tickets still mid-append (whose enqueuer will signal).
// Popping in strict ticket order is what preserves per-sender FIFO across
// lanes. The vacated slot is zeroed so a queued payload cannot outlive
// its delivery; a drained column rewinds to reuse its backing array.
func (c *Client) popLocked() (Delivery, bool) {
	want := c.popNext + 1
	for i := range c.lanes {
		q := &c.lanes[i]
		if q.n.Load() == 0 {
			continue
		}
		q.mu.Lock()
		if q.head < len(q.queue) && q.queue[q.head].tick == want {
			dv := q.queue[q.head].dv
			q.queue[q.head] = queued{}
			q.head++
			if q.head == len(q.queue) {
				q.queue = q.queue[:0]
				q.head = 0
			}
			q.n.Add(-1)
			c.depth.Add(-1)
			c.d.lanes[i].depth.Add(-1)
			q.mu.Unlock()
			c.popNext = want
			if dv.TraceID != 0 {
				// The enqueue→pop delta is the lane residency time (client
				// backlog included); stamped outside the column lock.
				dv.appendHop(busproto.HopLanePop, c.d.traceNode, time.Now().UnixNano())
			}
			return dv, true
		}
		q.mu.Unlock()
	}
	return Delivery{}, false
}

// TryNext returns a pending delivery without blocking.
func (c *Client) TryNext() (Delivery, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.popLocked()
}

// Pending returns the number of queued deliveries.
func (c *Client) Pending() int {
	return int(c.depth.Load())
}

// Close detaches the client from the daemon.
func (c *Client) Close() error {
	c.d.mu.Lock()
	if !c.d.closed {
		c.mu.Lock()
		for _, p := range c.pats {
			c.d.subs.Remove(p, c)
		}
		c.pats = map[string]subject.Pattern{}
		c.mu.Unlock()
		delete(c.d.clients, c)
	}
	c.d.mu.Unlock()
	// Outside d.mu: removing a raised watch emits a clear edge, and the
	// engine sink publishes through this daemon (which takes d.mu).
	if c.watch != nil {
		c.d.health.Unwatch(c.watch)
		c.watch = nil
	}
	c.shutdown()
	return nil
}

func (c *Client) shutdown() {
	c.closed.Store(true)
	// Closing every column under its own lock guarantees no enqueue can
	// draw a ticket after this point, so the queued ticket range stays
	// hole-free and Next can drain it to exactly the last entry.
	for i := range c.lanes {
		q := &c.lanes[i]
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
	}
	select {
	case c.signal <- struct{}{}:
	default:
	}
}

// enqueue appends a delivery to the client's queue column for ln. The
// queue is unbounded so one slow application cannot stall the host daemon
// (the trade-off the paper's daemon makes by dropping; we prefer
// losslessness and expose Pending for monitoring). Only the column's lock
// is taken: enqueues on different lanes never contend.
func (c *Client) enqueue(ln *lane, dv Delivery) bool {
	q := &c.lanes[ln.idx]
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	// Ticket draw and append are atomic with respect to poppers (both
	// under q.mu), so a drawn ticket is visible the moment the lock is
	// released and column order equals ticket order.
	q.queue = append(q.queue, queued{dv: dv, tick: c.ticket.Add(1)})
	q.n.Add(1)
	c.depth.Add(1)
	ln.depth.Add(1)
	q.mu.Unlock()
	select {
	case c.signal <- struct{}{}:
	default:
	}
	return true
}

// ---------------------------------------------------------------------------
// Inbound routing

// recvLoop drains the reliable connection. With one lane it handles every
// message inline (the seed path); with several it dispatches to the
// long-lived worker keyed by the sender's address hash, so one sender's
// messages are always handled by one worker in arrival order — per-sender
// FIFO survives the parallelism, and the qledger invariant that an ack
// record never overtakes its message record rides on exactly that. A full
// worker channel blocks this loop (backpressure), never drops or spawns.
func (d *Daemon) recvLoop() {
	defer d.wg.Done()
	if d.workers != nil {
		// Registered after the wg.Done defer so it runs first (LIFO):
		// d.wg.Wait() returning means every worker has drained and exited,
		// which is what lets Close shut clients down without racing a
		// worker mid-enqueue.
		defer func() {
			for _, w := range d.workers {
				close(w.ch)
			}
			d.inWg.Wait()
		}()
	}
	for {
		select {
		case <-d.done:
			return
		case m, ok := <-d.conn.Recv():
			if !ok {
				return
			}
			if d.workers == nil {
				d.handleMessage(d.interner, m)
				continue
			}
			d.workers[addrHash(m.From)%uint32(len(d.workers))].ch <- m
		}
	}
}

// workerLoop is one inbound worker: it handles its channel's messages in
// order with a private interner until recvLoop closes the channel.
func (d *Daemon) workerLoop(w *inWorker) {
	defer d.inWg.Done()
	for m := range w.ch {
		d.handleMessage(w.interner, m)
	}
}

func (d *Daemon) handleMessage(in *subject.Interner, m reliable.Message) {
	env, err := busproto.Decode(m.Payload)
	if err != nil {
		d.ctr.corruptDropped.Inc()
		if d.rec != nil {
			d.rec.Record(telemetry.EventDrop, "corrupt-envelope", 1, 0)
		}
		return
	}
	switch env.Base() {
	case busproto.KindPublish, busproto.KindGuaranteed:
		subj, err := in.Parse(env.Subject)
		if err != nil {
			d.ctr.corruptDropped.Inc()
			return
		}
		d.ctr.inbound.Inc()
		guaranteed := env.Base() == busproto.KindGuaranteed
		if env.Traced() {
			// Record the consumer-daemon hop and, with the publisher's
			// first-hop stamp, the end-to-end network+daemon latency (all
			// simulated nodes share the host clock).
			now := time.Now().UnixNano()
			env.AppendHop(d.traceNode, now)
			if len(env.Trace) > 0 {
				d.ctr.traceE2E.Observe(time.Duration(now - env.Trace[0].At))
				if d.rec != nil {
					d.rec.Record(telemetry.EventTrace, d.traceNode,
						now-env.Trace[0].At, int64(len(env.Trace)))
				}
			}
		}
		var claimed bool
		if guaranteed {
			var seen bool
			claimed, seen = d.guarBegin(env.Origin, env.ID)
			if seen {
				// Already delivered locally; re-acknowledge in case the
				// publisher missed our first ack, but do not re-deliver.
				d.sendGuarAck(m.From, env.ID, env.Origin)
				return
			}
			if !claimed {
				// Another worker is fanning this very publication out right
				// now (the origin's retransmission and a recovery replayer's
				// copy arriving on different workers). Skip both delivery and
				// ack: if the racing copy delivers, the publisher's next
				// retransmission is answered from guarSeen; acking here could
				// confirm a delivery that ends up not happening.
				return
			}
		}
		dv := Delivery{
			Subject:    subj,
			Payload:    env.Payload,
			From:       m.From,
			Guaranteed: guaranteed,
			ID:         env.ID,
			TraceID:    env.TraceID,
			Trace:      env.Trace,
		}
		delivered := d.routeLocal(dv)
		if guaranteed {
			d.guarEnd(env.Origin, env.ID, delivered > 0)
			if delivered > 0 {
				// Acknowledge on behalf of our subscribers, unicast to the
				// publisher.
				d.ctr.guarAcksSent.Inc()
				d.sendGuarAck(m.From, env.ID, env.Origin)
			}
		}
	case busproto.KindGuarAck:
		if env.Origin != d.identity {
			// Not ours — but it may belong to a crashed publisher this
			// daemon is replaying for (the acker unicasts to whoever
			// retransmitted, which is us).
			d.mu.Lock()
			foster := d.foster[env.Origin]
			d.mu.Unlock()
			if foster != nil {
				d.ctr.guarAcksRecv.Inc()
				foster(env.ID, m.From)
			}
			return
		}
		d.ctr.guarAcksRecv.Inc()
		d.mu.Lock()
		onAck := d.onAck
		d.mu.Unlock()
		if onAck != nil {
			onAck(env.ID, m.From)
		}
	}
}

// sendGuarAck unicasts a guaranteed-delivery acknowledgement through a
// pooled buffer (Conn.SendTo copies before returning).
func (d *Daemon) sendGuarAck(to string, id uint64, origin string) {
	buf := bufpool.Get(len(origin) + 16)
	*buf = busproto.AppendEncode((*buf)[:0], busproto.Envelope{Kind: busproto.KindGuarAck, ID: id, Origin: origin})
	_ = d.conn.SendTo(to, *buf)
	bufpool.Put(buf)
}

// routeLocal fans a delivery out to every matching local client through
// the delivery lane the subject hashes to: the lane's match-cache shard
// answers the subscription lookup and the lane's column of each client's
// queue takes the enqueue, so publications on subjects of different lanes
// share no locks here at all.
func (d *Daemon) routeLocal(dv Delivery) int {
	ln := d.lanes[dv.Subject.LaneIndex(len(d.lanes))]
	if dv.TraceID != 0 {
		// One lane-enqueue hop per publication (not per subscriber): the
		// fan-out below shares the stamped trace.
		dv.appendHop(busproto.HopLaneEnqueue, d.traceNode, time.Now().UnixNano())
	}
	matches := ln.cache.Match(d.subs, dv.Subject)
	delivered := 0
	for _, c := range matches {
		if c.enqueue(ln, dv) {
			delivered++
		}
	}
	if delivered == 0 {
		d.ctr.noSubscriber.Inc()
	} else {
		ln.delivered.Add(uint64(delivered))
		d.ctr.deliveredLocal.Add(uint64(delivered))
	}
	// Per-subject-family accounting: one note per publication routed on
	// this lane, a map probe under the lane table's own mutex.
	ln.topk.Note(dv.Subject.Family(), len(dv.Payload), delivered < len(matches))
	return delivered
}

// ---------------------------------------------------------------------------
// Interest advertisement (consumed by information routers)

// maxAdvertisedPatterns bounds the size of one interest advertisement. A
// host with thousands of subscriptions (Figure 8 subscribes to 10 000
// subjects) must not occupy the shared medium with its interest chatter,
// so large sets are aggregated to wildcard prefixes — routers may then
// over-forward slightly, which is safe, instead of the wire drowning.
const maxAdvertisedPatterns = 64

// AdvertiseInterest broadcasts the daemon's aggregate subscription pattern
// set immediately. It is also called periodically and on every
// subscription change.
func (d *Daemon) AdvertiseInterest() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	if d.advDirty {
		d.advCache = aggregateInterest(d.subs.Patterns(), maxAdvertisedPatterns)
		d.advDirty = false
	}
	patterns := d.advCache
	d.mu.Unlock()
	if len(patterns) == 0 {
		return
	}
	buf := bufpool.Get(256)
	*buf = busproto.AppendEncode((*buf)[:0], busproto.Envelope{Kind: busproto.KindInterest, Patterns: patterns})
	_ = d.conn.Publish(*buf)
	bufpool.Put(buf)
	_ = d.conn.Flush()
}

// aggregateInterest collapses an oversized pattern set to first-element
// wildcard prefixes ("bench.>"), and to a single ">" if even that is too
// many. Aggregation only widens interest, never narrows it. The algorithm
// lives in subject.AggregatePatterns so mesh routers apply the exact same
// widening transitively at every hop.
func aggregateInterest(patterns []string, cap int) []string {
	return subject.AggregatePatterns(patterns, cap)
}

// guarBegin opens the fan-out of a guaranteed publication. seen reports
// that the key was already delivered locally (caller re-acks, does not
// re-deliver); claimed reports that this caller now owns the fan-out and
// must finish with guarEnd. (false, false) means another goroutine holds
// the claim right now — with several inbound workers the origin's
// retransmission and a recovery replayer's copy can arrive on different
// workers at once, and without the claim both would pass the seen check
// and double-deliver.
func (d *Daemon) guarBegin(origin string, id uint64) (claimed, seen bool) {
	key := guarKey{origin: origin, id: id}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.guarSeen[key]; ok {
		return false, true
	}
	if _, ok := d.guarInflight[key]; ok {
		return false, false
	}
	if d.guarInflight == nil {
		d.guarInflight = make(map[guarKey]struct{})
	}
	d.guarInflight[key] = struct{}{}
	return true, false
}

// guarEnd closes a fan-out claimed by guarBegin. Delivered publications
// are recorded so publisher retransmissions are suppressed ("if there is
// no failure, then the message will be delivered exactly once"). Only
// delivered messages are recorded: a daemon with no matching subscriber
// keeps accepting retries, so a subscriber that appears later still
// receives the message.
func (d *Daemon) guarEnd(origin string, id uint64, delivered bool) {
	key := guarKey{origin: origin, id: id}
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.guarInflight, key)
	if delivered {
		d.guarRecordLocked(key)
	}
}

// guarRecordLocked marks a key delivered under d.mu. Recording an
// already-seen key is a no-op, so the ring holds no duplicates and every
// slot's eviction removes exactly its own key.
func (d *Daemon) guarRecordLocked(key guarKey) {
	if _, dup := d.guarSeen[key]; dup {
		return
	}
	d.guarSeen[key] = struct{}{}
	if len(d.guarRing) < d.guarCap {
		d.guarRing = append(d.guarRing, key)
		d.guarSeenGauge.Set(int64(len(d.guarSeen)))
		return
	}
	delete(d.guarSeen, d.guarRing[d.guarHead])
	d.guarRing[d.guarHead] = key
	d.guarHead = (d.guarHead + 1) % d.guarCap
	d.guarSeenGauge.Set(int64(len(d.guarSeen)))
}

// kickInterest schedules a prompt advertisement without blocking the
// caller; bursts of subscription changes collapse into one broadcast.
func (d *Daemon) kickInterest() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

func (d *Daemon) interestLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(InterestInterval)
	defer ticker.Stop()
	debounce := time.NewTimer(time.Hour)
	debounce.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-d.kick:
			// Let a burst of Subscribe calls settle briefly, then send one
			// advertisement covering them all. Stop-and-drain before Reset:
			// if the timer fired between our last receive and this kick, the
			// stale expiry sits in debounce.C and would otherwise make the
			// reset fire immediately, defeating the debounce (this loop is
			// the only reader, so the non-blocking drain cannot race).
			if !debounce.Stop() {
				select {
				case <-debounce.C:
				default:
				}
			}
			debounce.Reset(2 * time.Millisecond)
		case <-debounce.C:
			d.AdvertiseInterest()
		case <-ticker.C:
			d.AdvertiseInterest()
		}
	}
}
