package daemon

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
)

// Delivery lanes.
//
// The daemon shards its fan-out state across a fixed pool of lanes keyed
// by subject-prefix hash (subject.LaneIndex): each lane owns one shard of
// the trie match cache and one column of every client's head-indexed
// delivery queue. Publications on subjects hashing to different lanes
// touch disjoint mutexes end to end, so local publishers on separate
// goroutines — and the inbound workers below — fan out without sharing a
// lock.
//
// Ordering is NOT entrusted to the lane hash. Per-sender FIFO across
// subjects on different lanes is preserved by two mechanisms:
//
//   - every delivery enqueued to a client draws a ticket from the client's
//     arrival counter, and consumers pop in strict ticket order across the
//     lane columns (see Client.popLocked);
//   - inbound traffic is dispatched to a fixed pool of long-lived workers
//     keyed by *sender* hash, so one sender's messages are always handled
//     by one worker, in arrival order (no per-delivery goroutines, and the
//     qledger rule that an ack record never overtakes its message rides on
//     exactly this).
//
// With DeliveryLanes == 1 no workers exist and the daemon runs the seed
// path: inline handling on the receive goroutine, a single cache shard,
// a single queue column per client.

// maxAutoLanes caps the auto-selected lane count (Options.DeliveryLanes
// == 0 picks min(GOMAXPROCS, maxAutoLanes)). Lanes beyond the point where
// per-op fan-out work saturates memory bandwidth only add scan cost to
// every queue pop.
const maxAutoLanes = 8

// maxLanes bounds an explicit Options.DeliveryLanes.
const maxLanes = 64

// resolveLanes turns the configured lane count into the effective one.
func resolveLanes(n int) int {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
		if n > maxAutoLanes {
			n = maxAutoLanes
		}
	}
	if n < 1 {
		n = 1
	}
	if n > maxLanes {
		n = maxLanes
	}
	return n
}

// lane is one delivery lane: a match-cache shard plus its telemetry. The
// client queue columns it owns live inside each Client (indexed by idx).
type lane struct {
	idx   int
	cache *subject.MatchCache[*Client]
	// depth gauges the deliveries enqueued via this lane and not yet
	// consumed, summed over all clients ("daemon.lane<N>.depth"). The
	// per-client aggregate the slow-consumer alarm watches is Client.depth;
	// these per-lane gauges expose *where* a backlog sits.
	depth *telemetry.Gauge
	// delivered counts fan-out deliveries routed via this lane
	// ("daemon.lane<N>.delivered").
	delivered *telemetry.Counter
	// topk is the lane's bounded subject-family accounting table
	// (telemetry.TopK): one Note per publication routed through the lane,
	// contending only with the lane's own deliveries.
	topk *telemetry.TopK
}

// laneTopK bounds each lane's subject-family table. Families beyond the
// bound fold into the space-saving overestimate instead of growing state.
const laneTopK = 128

func newLanes(n int, metrics *telemetry.Registry) []*lane {
	lanes := make([]*lane, n)
	for i := range lanes {
		lanes[i] = &lane{
			idx:       i,
			cache:     subject.NewMatchCache[*Client](0),
			depth:     metrics.Gauge(fmt.Sprintf("daemon.lane%d.depth", i)),
			delivered: metrics.Counter(fmt.Sprintf("daemon.lane%d.delivered", i)),
			topk:      telemetry.NewTopK(laneTopK),
		}
	}
	return lanes
}

// inWorker is one inbound-delivery worker. Each worker has a private
// subject interner: the shared one is a mutex-guarded map and would
// re-serialize the pool.
type inWorker struct {
	ch       chan reliable.Message
	interner *subject.Interner
}

// workerQueueDepth bounds each worker's dispatch channel. A full channel
// blocks the receive loop — backpressure, preserving per-sender FIFO —
// rather than dropping or spawning.
const workerQueueDepth = 256

// addrHash is FNV-1a over a transport address, for sender→worker keying.
func addrHash(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * prime32
	}
	return h
}

// tokenSource is a per-daemon seeded splitmix64 stream replacing draws
// from the global math/rand source (identity tokens, trace-id bases,
// discovery round tokens). Seeded instances make multi-host netsim tests
// deterministic; the global source's lock is also off the path entirely.
// Safe for concurrent use: one atomic add per token.
type tokenSource struct{ state atomic.Uint64 }

// tokenSalt disambiguates auto-seeded daemons created within one clock
// tick (same pattern as the reliable epoch).
var tokenSalt atomic.Uint64

// newTokenSource seeds a stream. Zero derives a unique seed from the
// clock plus a process-wide counter; a fixed nonzero seed yields a
// reproducible stream, decorrelated (by a constant xor) from the reliable
// epoch that the same Config.Seed produces.
func newTokenSource(seed uint64) *tokenSource {
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) + tokenSalt.Add(1)<<32
	} else {
		seed ^= 0xd6e8feb86659fd93
	}
	t := &tokenSource{}
	t.state.Store(seed)
	return t
}

// Next returns the next token (splitmix64: never zero-biased, full
// period).
func (t *tokenSource) Next() uint64 {
	z := t.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
