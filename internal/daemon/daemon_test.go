package daemon

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/transport"
)

func newPair(t *testing.T) (*Daemon, *Daemon) {
	t.Helper()
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 5000
	seg := transport.NewSimSegment(cfg)
	rcfg := reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
	epA, err := seg.NewEndpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := seg.NewEndpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	da, db := New(epA, rcfg, Options{}), New(epB, rcfg, Options{})
	t.Cleanup(func() {
		_ = da.Close()
		_ = db.Close()
		_ = seg.Close()
	})
	return da, db
}

func nextDelivery(t *testing.T, c *Client, within time.Duration) Delivery {
	t.Helper()
	stop := make(chan struct{})
	timer := time.AfterFunc(within, func() { close(stop) })
	defer timer.Stop()
	dv, ok := c.Next(stop)
	if !ok {
		t.Fatal("no delivery within deadline")
	}
	return dv
}

func TestSubjectRoutingBetweenDaemons(t *testing.T) {
	da, db := newPair(t)
	cb, err := db.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.Subscribe(subject.MustParsePattern("fab5.>")); err != nil {
		t.Fatal(err)
	}
	if err := da.Publish(subject.MustParse("fab5.cc.temp"), []byte("98")); err != nil {
		t.Fatal(err)
	}
	dv := nextDelivery(t, cb, 5*time.Second)
	if dv.Subject.String() != "fab5.cc.temp" || string(dv.Payload) != "98" {
		t.Errorf("delivery = %+v", dv)
	}
	if dv.From != da.Addr() {
		t.Errorf("from = %q", dv.From)
	}
	// Non-matching subject is filtered by the daemon (stats, no delivery).
	if err := da.Publish(subject.MustParse("other.topic"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if cb.Pending() != 0 {
		t.Errorf("pending = %d after non-matching publish", cb.Pending())
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	da, db := newPair(t)
	cb, _ := db.NewClient("app")
	pat := subject.MustParsePattern("s.t")
	_ = cb.Subscribe(pat)
	_ = da.Publish(subject.MustParse("s.t"), []byte("1"))
	nextDelivery(t, cb, 5*time.Second)
	_ = cb.Unsubscribe(pat)
	_ = da.Publish(subject.MustParse("s.t"), []byte("2"))
	time.Sleep(30 * time.Millisecond)
	if cb.Pending() != 0 {
		t.Error("delivery after unsubscribe")
	}
}

func TestLocalLoopbackAndFanout(t *testing.T) {
	da, _ := newPair(t)
	c1, _ := da.NewClient("one")
	c2, _ := da.NewClient("two")
	_ = c1.Subscribe(subject.MustParsePattern("local.x"))
	_ = c2.Subscribe(subject.MustParsePattern("local.>"))
	if err := da.Publish(subject.MustParse("local.x"), []byte("loop")); err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Client{c1, c2} {
		dv := nextDelivery(t, c, 5*time.Second)
		if string(dv.Payload) != "loop" {
			t.Errorf("payload = %q", dv.Payload)
		}
	}
	st := da.Stats()
	if st.DeliveredLocal != 2 {
		t.Errorf("DeliveredLocal = %d", st.DeliveredLocal)
	}
}

func TestGuaranteedAckFlow(t *testing.T) {
	da, db := newPair(t)
	acked := make(chan uint64, 1)
	da.OnGuaranteeAck(func(id uint64, from string) { acked <- id })

	cb, _ := db.NewClient("db-writer")
	_ = cb.Subscribe(subject.MustParsePattern("g.>"))
	if err := da.PublishGuaranteed(subject.MustParse("g.row"), []byte("insert"), 77); err != nil {
		t.Fatal(err)
	}
	dv := nextDelivery(t, cb, 5*time.Second)
	if !dv.Guaranteed || dv.ID != 77 {
		t.Errorf("delivery = %+v", dv)
	}
	select {
	case id := <-acked:
		if id != 77 {
			t.Errorf("acked id = %d", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ack never arrived")
	}
	if db.Stats().GuarAcksSent != 1 {
		t.Errorf("consumer stats = %+v", db.Stats())
	}
}

func TestGuaranteedNoAckWithoutSubscriber(t *testing.T) {
	da, db := newPair(t)
	acked := make(chan uint64, 1)
	da.OnGuaranteeAck(func(id uint64, from string) { acked <- id })
	// db has no subscribing client.
	if err := da.PublishGuaranteed(subject.MustParse("g.row"), []byte("x"), 1); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-acked:
		t.Errorf("spurious ack %d", id)
	case <-time.After(50 * time.Millisecond):
	}
	_ = db
}

func TestGuaranteedLocalSelfAck(t *testing.T) {
	da, _ := newPair(t)
	acked := make(chan uint64, 1)
	da.OnGuaranteeAck(func(id uint64, from string) { acked <- id })
	c, _ := da.NewClient("local-db")
	_ = c.Subscribe(subject.MustParsePattern("g.x"))
	if err := da.PublishGuaranteed(subject.MustParse("g.x"), []byte("v"), 9); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-acked:
		if id != 9 {
			t.Errorf("acked id = %d", id)
		}
	case <-time.After(time.Second):
		t.Fatal("local self-ack missing")
	}
}

func TestClientCloseAndDaemonClose(t *testing.T) {
	da, db := newPair(t)
	c, _ := db.NewClient("app")
	_ = c.Subscribe(subject.MustParsePattern("s.>"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(subject.MustParsePattern("t.>")); !errors.Is(err, ErrClosed) {
		t.Errorf("subscribe after close = %v", err)
	}
	_ = da.Publish(subject.MustParse("s.x"), []byte("gone"))
	time.Sleep(30 * time.Millisecond)
	if c.Pending() != 0 {
		t.Error("delivery to closed client")
	}
	if _, ok := c.TryNext(); ok {
		t.Error("TryNext on closed empty client")
	}
	// Daemon close rejects new clients and publishes.
	_ = db.Close()
	if _, err := db.NewClient("late"); !errors.Is(err, ErrClosed) {
		t.Errorf("NewClient after close = %v", err)
	}
	if err := db.Publish(subject.MustParse("a.b"), nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after close = %v", err)
	}
}

func TestGuaranteedRetransmissionDeduplicated(t *testing.T) {
	da, db := newPair(t)
	cb, _ := db.NewClient("db-writer")
	_ = cb.Subscribe(subject.MustParsePattern("g.dup"))
	// The publisher retransmits the same (origin, id) three times, as the
	// guaranteed-delivery retrier does until an ack lands.
	for i := 0; i < 3; i++ {
		if err := da.PublishGuaranteed(subject.MustParse("g.dup"), []byte("once"), 5); err != nil {
			t.Fatal(err)
		}
	}
	dv := nextDelivery(t, cb, 5*time.Second)
	if string(dv.Payload) != "once" {
		t.Fatalf("payload = %q", dv.Payload)
	}
	time.Sleep(50 * time.Millisecond)
	if cb.Pending() != 0 {
		t.Errorf("retransmissions delivered %d duplicate(s)", cb.Pending())
	}
	// A DIFFERENT id is a new message and must be delivered.
	if err := da.PublishGuaranteed(subject.MustParse("g.dup"), []byte("two"), 6); err != nil {
		t.Fatal(err)
	}
	if dv := nextDelivery(t, cb, 5*time.Second); string(dv.Payload) != "two" {
		t.Fatalf("second payload = %q", dv.Payload)
	}
}

func TestGuaranteedLateSubscriberStillServed(t *testing.T) {
	da, db := newPair(t)
	// First transmission has no subscriber anywhere: not recorded as
	// delivered, so a later retry must still deliver.
	if err := da.PublishGuaranteed(subject.MustParse("g.late"), []byte("v"), 9); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cb, _ := db.NewClient("late-db")
	_ = cb.Subscribe(subject.MustParsePattern("g.late"))
	// The retry (same id) reaches the late subscriber.
	if err := da.PublishGuaranteed(subject.MustParse("g.late"), []byte("v"), 9); err != nil {
		t.Fatal(err)
	}
	if dv := nextDelivery(t, cb, 5*time.Second); string(dv.Payload) != "v" {
		t.Fatalf("payload = %q", dv.Payload)
	}
}

func TestAggregateInterest(t *testing.T) {
	// Small sets pass through unchanged.
	small := []string{"a.b", "c.>"}
	got := aggregateInterest(small, 64)
	if len(got) != 2 || got[0] != "a.b" {
		t.Errorf("small set = %v", got)
	}
	// Oversized sets collapse to first-element prefixes.
	var big []string
	for i := 0; i < 1000; i++ {
		big = append(big, "bench.s"+string(rune('a'+i%26))+".data")
	}
	got = aggregateInterest(big, 64)
	if len(got) != 1 || got[0] != "bench.>" {
		t.Errorf("aggregated = %v, want [bench.>]", got)
	}
	// Too many distinct prefixes collapse to ">".
	var wide []string
	for i := 0; i < 200; i++ {
		wide = append(wide, "p"+string(rune('a'+i%26))+string(rune('a'+i/26))+".x")
	}
	got = aggregateInterest(wide, 64)
	if len(got) != 1 || got[0] != ">" {
		t.Errorf("wide aggregated = %v, want [>]", got)
	}
	// A leading wildcard forces the universal pattern.
	got = aggregateInterest(append(big, ">"), 64)
	if len(got) != 1 || got[0] != ">" {
		t.Errorf("wildcard aggregated = %v", got)
	}
	// Aggregation only widens: every original pattern's matches are
	// covered by some aggregated pattern.
	agg := aggregateInterest(big, 64)
	s := subject.MustParse("bench.sa.data")
	covered := false
	for _, a := range agg {
		if subject.MustParsePattern(a).Matches(s) {
			covered = true
		}
	}
	if !covered {
		t.Error("aggregation narrowed interest")
	}
}

// TestGuarRingEviction pushes the dedup window well past 2x its capacity
// and checks the fixed-size ring: the set never exceeds the cap, the
// newest cap keys stay deduplicated, the oldest are forgotten, and
// re-recording a seen key is idempotent (no ring slot burned).
func TestGuarRingEviction(t *testing.T) {
	old := guarSeenCap
	guarSeenCap = 8
	defer func() { guarSeenCap = old }()
	da, _ := newPair(t)
	record := func(origin string, id uint64) {
		if claimed, _ := da.guarBegin(origin, id); claimed {
			da.guarEnd(origin, id, true)
		}
	}
	seenKey := func(origin string, id uint64) bool {
		da.mu.Lock()
		defer da.mu.Unlock()
		_, ok := da.guarSeen[guarKey{origin: origin, id: id}]
		return ok
	}
	const total = 20 // > 2x cap
	for id := uint64(0); id < total; id++ {
		record("origin-a", id)
		// Idempotent re-record: must not consume another ring slot.
		record("origin-a", id)
	}
	da.mu.Lock()
	seen, ringLen := len(da.guarSeen), len(da.guarRing)
	da.mu.Unlock()
	if seen != 8 || ringLen != 8 {
		t.Fatalf("seen=%d ring=%d, want cap=8 for both", seen, ringLen)
	}
	for id := uint64(total - 8); id < total; id++ {
		if !seenKey("origin-a", id) {
			t.Errorf("id %d within the window was forgotten", id)
		}
	}
	for id := uint64(0); id < total-8; id++ {
		if seenKey("origin-a", id) {
			t.Errorf("id %d beyond the window still seen", id)
		}
	}
	// Distinct origins with equal ids are distinct keys.
	record("origin-b", total-1)
	if !seenKey("origin-b", total-1) || !seenKey("origin-a", total-1) {
		t.Error("(origin, id) keys collided across origins")
	}
}

// TestGuaranteedLateSubscriberAfterEviction is the network-level eviction
// scenario: a guaranteed message is still being retried while the consumer
// daemon's dedup window churns through more than its capacity of OTHER
// guaranteed deliveries. A subscriber appearing only then must receive the
// retried message exactly once — the churn must neither deliver duplicates
// nor lose the pending message.
func TestGuaranteedLateSubscriberAfterEviction(t *testing.T) {
	old := guarSeenCap
	guarSeenCap = 8
	defer func() { guarSeenCap = old }()
	da, db := newPair(t)

	// No subscriber for g.target yet: retries are accepted, nothing recorded.
	target := subject.MustParse("g.target")
	if err := da.PublishGuaranteed(target, []byte("pending"), 999); err != nil {
		t.Fatal(err)
	}

	// Churn the consumer's dedup window: > 2x cap distinct guaranteed
	// deliveries on another subject, each consumed by a live subscriber.
	filler, _ := db.NewClient("filler")
	_ = filler.Subscribe(subject.MustParsePattern("g.fill"))
	fill := subject.MustParse("g.fill")
	for id := uint64(1); id <= 20; id++ {
		if err := da.PublishGuaranteed(fill, []byte("f"), id); err != nil {
			t.Fatal(err)
		}
		nextDelivery(t, filler, 5*time.Second)
	}

	// The late subscriber appears after the evictions...
	late, _ := db.NewClient("late")
	_ = late.Subscribe(subject.MustParsePattern("g.target"))
	// ...and the publisher's retries continue (same id, as the ledger
	// retrier does until acked).
	for i := 0; i < 3; i++ {
		if err := da.PublishGuaranteed(target, []byte("pending"), 999); err != nil {
			t.Fatal(err)
		}
	}
	if dv := nextDelivery(t, late, 5*time.Second); string(dv.Payload) != "pending" || dv.ID != 999 {
		t.Fatalf("delivery = %q id %d", dv.Payload, dv.ID)
	}
	time.Sleep(50 * time.Millisecond)
	if n := late.Pending(); n != 0 {
		t.Errorf("late subscriber received %d duplicate(s)", n)
	}
}

// TestInterestDebounceCoalesces drives the interestLoop's live debounce
// path: a burst of subscription changes must collapse into a small number
// of interest broadcasts, not one per change (the timer is stopped and
// drained before each reset, so a stale expiry cannot defeat the 2ms
// settle window).
func TestInterestDebounceCoalesces(t *testing.T) {
	_, db := newPair(t)
	c, _ := db.NewClient("bursty")
	base := db.Conn().Stats().Published
	for i := 0; i < 40; i++ {
		if err := c.Subscribe(subject.MustParsePattern(fmt.Sprintf("burst.s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(60 * time.Millisecond) // let the debounce fire and settle
	sent := db.Conn().Stats().Published - base
	// One advertisement per change would be ~40; the debounce plus the
	// 250ms periodic tick should keep it to a handful.
	if sent > 10 {
		t.Errorf("burst of 40 subscriptions caused %d broadcasts, want <= 10", sent)
	}
	if sent == 0 {
		t.Error("debounce never advertised at all")
	}
}
