// Package mesh makes a set of information routers self-organizing: routers
// bridging overlapping segments discover each other over "_sys.mesh.>",
// elect a loop-free spanning tree over the segment graph, and propagate
// aggregated interest advertisements hop by hop, so a publication traverses
// only subscriber-bearing segments plus the connecting tree path.
//
// The package holds the protocol state machine and the advertisement
// codec; internal/router drives it (sending and receiving the ads on its
// attachments) and consults it on the forwarding fast path.
//
// Three advertisement kinds travel as self-describing objects (P2), so
// ibmon can render the mesh without linking against this package:
//
//   - MeshHello on "_sys.mesh.hello": the spanning-tree config vector
//     (root, cost, sender), sent per segment. Link-local: routers never
//     forward it, since hearing one defines adjacency.
//   - MeshInterest on "_sys.mesh.interest": the aggregated interest of
//     everything reachable through the sender away from this segment.
//     Link-local for the same reason.
//   - MeshStatus on "_sys.mesh.status.<node>": a periodic introspection
//     snapshot (links, port states, tree parent, interest tables). This
//     one is an ordinary publication and crosses routers like any other
//     subject a monitor subscribes to.
package mesh

import (
	"errors"

	"infobus/internal/mop"
	"infobus/internal/subject"
	"infobus/internal/wire"
)

// Subject conventions. The hello/interest conversation and the discovery
// bootstrap ("_sys.mesh.q.link" / "_sys.mesh.r.link") are link-local:
// routers process them and never forward them. Status snapshots are not.
const (
	// SubjectPrefix is the reserved subject subtree for the mesh protocol.
	SubjectPrefix = "_sys.mesh"
	// HelloSubject carries MeshHello config vectors (link-local).
	HelloSubject = "_sys.mesh.hello"
	// InterestSubject carries MeshInterest aggregates (link-local).
	InterestSubject = "_sys.mesh.interest"
	// StatusSubjectPrefix prefixes the per-router introspection snapshots:
	// "_sys.mesh.status.<node>". Subscribe "_sys.mesh.status.>" to watch
	// every router's view of the tree.
	StatusSubjectPrefix = "_sys.mesh.status"
	// DiscService is the discovery service name routers announce under, so
	// a joining router can ask "who's out there?" on a segment and learn
	// its neighbors' hellos in one round trip instead of waiting out a
	// hello interval (discovery.AnnounceOn / DiscoverOn with Prefix
	// SubjectPrefix).
	DiscService = "link"
)

// StatusSubject returns the status subject for a (sanitised) router node
// name.
func StatusSubject(node string) string { return StatusSubjectPrefix + "." + node }

// Codec caps: everything arriving on these subjects is network input and
// must survive arbitrary bytes. wire.Unmarshal already guards value and
// class depth; these bound what this package then accepts from the decoded
// object. Oversized lists are truncated (never grown), oversized strings
// rejected.
const (
	// MaxAdPatterns bounds the patterns in one MeshInterest. It is far
	// above the aggregation target (64): a router that receives more than
	// the cap truncates, which only narrows what it forwards, never loops.
	MaxAdPatterns = 256
	// MaxAdLinks bounds the links enumerated by one hello or status ad.
	MaxAdLinks = 64
	// maxTokenLen bounds every identifier string in an ad (router ids,
	// link names, root ids).
	maxTokenLen = 256
	// maxAdBytes bounds the wire payload a router will even try to decode.
	maxAdBytes = 64 << 10
)

// ErrBadAd reports an advertisement payload that failed the codec's
// structural checks.
var ErrBadAd = errors.New("mesh: bad advertisement")

// LinkInfo describes one router attachment in a hello or status ad.
type LinkInfo struct {
	// Name is the attachment (segment) name.
	Name string
	// State is the port state string, PortForwarding.String() or
	// PortBlocked.String().
	State string
	// Peers counts the live neighbor routers heard on the link (status
	// ads; hellos leave it zero).
	Peers int64
	// Patterns is the aggregated remote interest heard on the link
	// (status ads only).
	Patterns []string
}

// HelloAd is the spanning-tree configuration vector one router broadcasts
// on one segment: "I believe the root is Root, my cost to it is Cost, and
// I am Router." Receivers elect with it exactly as 802.1D bridges do.
type HelloAd struct {
	Router string // sender's router id (unique; lowest id wins root)
	Root   string // sender's current root candidate
	Cost   int64  // sender's hop cost to that root
	Parent string // sender's tree parent ("" when sender is root)
	Seq    int64  // sender's monotone ad sequence, for introspection
	Links  []LinkInfo
}

// InterestAd is one router's aggregated remote interest advertised into a
// segment: the union of everything reachable through the sender AWAY from
// that segment, re-aggregated at each hop (subject.AggregatePatterns).
type InterestAd struct {
	Router   string
	Seq      int64
	Patterns []string
}

// StatusAd is the periodic introspection snapshot.
type StatusAd struct {
	Node   string // sanitised router node name ("router-a")
	Router string // mesh router id
	Root   string
	Cost   int64
	Parent string
	Seq    int64
	Links  []LinkInfo
}

// Types is the registered mesh advertisement class family.
type Types struct {
	Link     *mop.Type // MeshLink: one attachment row
	Hello    *mop.Type // MeshHello: spanning-tree config vector
	Interest *mop.Type // MeshInterest: hop-aggregated interest
	Status   *mop.Type // MeshStatus: introspection snapshot
}

// DefineTypes builds and registers the mesh classes in a registry,
// tolerating (and reusing) any already-registered subset, like
// telemetry.DefineSysTypes.
func DefineTypes(reg *mop.Registry) (Types, error) {
	var firstErr error
	ensure := func(name string, build func() *mop.Type) *mop.Type {
		if firstErr != nil {
			return nil
		}
		if reg.Has(name) {
			t, err := reg.Lookup(name)
			if err != nil {
				firstErr = err
				return nil
			}
			return t
		}
		t := build()
		if err := reg.Register(t); err != nil {
			firstErr = err
			return nil
		}
		return t
	}
	var mt Types
	mt.Link = ensure("MeshLink", func() *mop.Type {
		return mop.MustNewClass("MeshLink", nil, []mop.Attr{
			{Name: "name", Type: mop.String},
			{Name: "state", Type: mop.String},
			{Name: "peers", Type: mop.Int},
			{Name: "patterns", Type: mop.ListOf(mop.String)},
		}, nil)
	})
	mt.Hello = ensure("MeshHello", func() *mop.Type {
		return mop.MustNewClass("MeshHello", nil, []mop.Attr{
			{Name: "router", Type: mop.String},
			{Name: "root", Type: mop.String},
			{Name: "cost", Type: mop.Int},
			{Name: "parent", Type: mop.String},
			{Name: "seq", Type: mop.Int},
			{Name: "links", Type: mop.ListOf(mt.Link)},
		}, nil)
	})
	mt.Interest = ensure("MeshInterest", func() *mop.Type {
		return mop.MustNewClass("MeshInterest", nil, []mop.Attr{
			{Name: "router", Type: mop.String},
			{Name: "seq", Type: mop.Int},
			{Name: "patterns", Type: mop.ListOf(mop.String)},
		}, nil)
	})
	mt.Status = ensure("MeshStatus", func() *mop.Type {
		return mop.MustNewClass("MeshStatus", nil, []mop.Attr{
			{Name: "node", Type: mop.String},
			{Name: "router", Type: mop.String},
			{Name: "root", Type: mop.String},
			{Name: "cost", Type: mop.Int},
			{Name: "parent", Type: mop.String},
			{Name: "seq", Type: mop.Int},
			{Name: "links", Type: mop.ListOf(mt.Link)},
		}, nil)
	})
	if firstErr != nil {
		return Types{}, firstErr
	}
	return mt, nil
}

// MustTypes is DefineTypes on a fresh registry; it cannot fail.
func MustTypes() Types {
	mt, err := DefineTypes(mop.NewRegistry())
	if err != nil {
		panic(err)
	}
	return mt
}

func linkList(mt Types, links []LinkInfo) mop.List {
	list := make(mop.List, 0, len(links))
	for _, l := range links {
		pats := make(mop.List, 0, len(l.Patterns))
		for _, p := range l.Patterns {
			pats = append(pats, p)
		}
		list = append(list, mop.MustNew(mt.Link).
			MustSet("name", l.Name).
			MustSet("state", l.State).
			MustSet("peers", l.Peers).
			MustSet("patterns", pats))
	}
	return list
}

// MarshalHello renders a HelloAd as a self-describing wire payload.
func MarshalHello(mt Types, ad HelloAd) ([]byte, error) {
	obj := mop.MustNew(mt.Hello).
		MustSet("router", ad.Router).
		MustSet("root", ad.Root).
		MustSet("cost", ad.Cost).
		MustSet("parent", ad.Parent).
		MustSet("seq", ad.Seq).
		MustSet("links", linkList(mt, ad.Links))
	return wire.Marshal(obj)
}

// MarshalInterest renders an InterestAd as a self-describing wire payload.
func MarshalInterest(mt Types, ad InterestAd) ([]byte, error) {
	pats := make(mop.List, 0, len(ad.Patterns))
	for _, p := range ad.Patterns {
		pats = append(pats, p)
	}
	obj := mop.MustNew(mt.Interest).
		MustSet("router", ad.Router).
		MustSet("seq", ad.Seq).
		MustSet("patterns", pats)
	return wire.Marshal(obj)
}

// MarshalStatus renders a StatusAd as a self-describing wire payload.
func MarshalStatus(mt Types, ad StatusAd) ([]byte, error) {
	obj := mop.MustNew(mt.Status).
		MustSet("node", ad.Node).
		MustSet("router", ad.Router).
		MustSet("root", ad.Root).
		MustSet("cost", ad.Cost).
		MustSet("parent", ad.Parent).
		MustSet("seq", ad.Seq).
		MustSet("links", linkList(mt, ad.Links))
	return wire.Marshal(obj)
}

// token pulls a string attribute, enforcing the identifier length cap.
func token(o *mop.Object, name string) (string, bool) {
	v, err := o.Get(name)
	if err != nil {
		return "", false
	}
	s, ok := v.(string)
	if !ok || len(s) > maxTokenLen {
		return "", false
	}
	return s, true
}

func intAttr(o *mop.Object, name string) (int64, bool) {
	v, err := o.Get(name)
	if err != nil {
		return 0, false
	}
	n, ok := v.(int64)
	return n, ok
}

// parsePatterns extracts a validated pattern list: entries that are not
// strings, exceed the subject length cap, or fail subject.ParsePattern are
// dropped (a bad entry must not poison its well-formed siblings), and the
// list is truncated at MaxAdPatterns. Truncation only narrows interest.
func parsePatterns(v mop.Value) []string {
	list, ok := v.(mop.List)
	if !ok || len(list) == 0 {
		return nil
	}
	if len(list) > MaxAdPatterns {
		list = list[:MaxAdPatterns]
	}
	out := make([]string, 0, len(list))
	for _, pv := range list {
		p, ok := pv.(string)
		if !ok || len(p) > subject.MaxLength {
			continue
		}
		if _, err := subject.ParsePattern(p); err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

func parseLinks(v mop.Value) []LinkInfo {
	list, ok := v.(mop.List)
	if !ok || len(list) == 0 {
		return nil
	}
	if len(list) > MaxAdLinks {
		list = list[:MaxAdLinks]
	}
	out := make([]LinkInfo, 0, len(list))
	for _, lv := range list {
		lo, ok := lv.(*mop.Object)
		if !ok || lo.Type().Name() != "MeshLink" {
			continue
		}
		name, ok := token(lo, "name")
		if !ok || name == "" {
			continue
		}
		state, _ := token(lo, "state")
		peers, _ := intAttr(lo, "peers")
		var li LinkInfo
		li.Name, li.State, li.Peers = name, state, peers
		if pv, err := lo.Get("patterns"); err == nil {
			li.Patterns = parsePatterns(pv)
		}
		out = append(out, li)
	}
	return out
}

// ParseHelloObject decodes a MeshHello object. Router and Root must be
// present, non-empty, and within the identifier cap; Cost must be
// non-negative (a negative cost would win every election forever).
func ParseHelloObject(o *mop.Object) (HelloAd, bool) {
	if o == nil || o.Type().Name() != "MeshHello" {
		return HelloAd{}, false
	}
	var ad HelloAd
	var ok bool
	if ad.Router, ok = token(o, "router"); !ok || ad.Router == "" {
		return HelloAd{}, false
	}
	if ad.Root, ok = token(o, "root"); !ok || ad.Root == "" {
		return HelloAd{}, false
	}
	if ad.Cost, ok = intAttr(o, "cost"); !ok || ad.Cost < 0 {
		return HelloAd{}, false
	}
	ad.Parent, _ = token(o, "parent")
	ad.Seq, _ = intAttr(o, "seq")
	if lv, err := o.Get("links"); err == nil {
		ad.Links = parseLinks(lv)
	}
	return ad, true
}

// ParseInterestObject decodes a MeshInterest object.
func ParseInterestObject(o *mop.Object) (InterestAd, bool) {
	if o == nil || o.Type().Name() != "MeshInterest" {
		return InterestAd{}, false
	}
	var ad InterestAd
	var ok bool
	if ad.Router, ok = token(o, "router"); !ok || ad.Router == "" {
		return InterestAd{}, false
	}
	ad.Seq, _ = intAttr(o, "seq")
	if pv, err := o.Get("patterns"); err == nil {
		ad.Patterns = parsePatterns(pv)
	}
	return ad, true
}

// ParseStatusObject decodes a MeshStatus object (ibmon's decoder).
func ParseStatusObject(o *mop.Object) (StatusAd, bool) {
	if o == nil || o.Type().Name() != "MeshStatus" {
		return StatusAd{}, false
	}
	var ad StatusAd
	var ok bool
	if ad.Router, ok = token(o, "router"); !ok || ad.Router == "" {
		return StatusAd{}, false
	}
	ad.Node, _ = token(o, "node")
	ad.Root, _ = token(o, "root")
	ad.Cost, _ = intAttr(o, "cost")
	ad.Parent, _ = token(o, "parent")
	ad.Seq, _ = intAttr(o, "seq")
	if lv, err := o.Get("links"); err == nil {
		ad.Links = parseLinks(lv)
	}
	return ad, true
}

// ParseAd decodes one mesh advertisement payload from the wire: a
// self-describing wire message holding a MeshHello, MeshInterest, or
// MeshStatus. It never panics on arbitrary input (FuzzMeshAd) and returns
// ErrBadAd for anything that does not pass the caps above.
func ParseAd(payload []byte) (any, error) {
	if len(payload) > maxAdBytes {
		return nil, ErrBadAd
	}
	v, err := wire.Unmarshal(payload, mop.NewRegistry())
	if err != nil {
		return nil, ErrBadAd
	}
	o, ok := v.(*mop.Object)
	if !ok {
		return nil, ErrBadAd
	}
	switch o.Type().Name() {
	case "MeshHello":
		if ad, ok := ParseHelloObject(o); ok {
			return ad, nil
		}
	case "MeshInterest":
		if ad, ok := ParseInterestObject(o); ok {
			return ad, nil
		}
	case "MeshStatus":
		if ad, ok := ParseStatusObject(o); ok {
			return ad, nil
		}
	}
	return nil, ErrBadAd
}
