package mesh

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"infobus/internal/subject"
)

// fastCfg keeps the state-machine tests deterministic and quick: the
// simulated exchange below advances a fake clock in 1ms steps.
func fastCfg() Config {
	return Config{
		HelloInterval:   5 * time.Millisecond,
		DeadFactor:      4,
		Debounce:        2 * time.Millisecond,
		InterestRefresh: 20 * time.Millisecond,
		StatusInterval:  -1,
	}
}

// fabric wires Mesh state machines together by segment name and pumps
// their advertisements synchronously: a deterministic stand-in for the
// network, so election tests need no goroutines or sleeps.
type fabric struct {
	members map[string][]fabricPort // segment name -> attached ports
	meshes  map[string]*Mesh
	hosts   map[string][][]string // mesh id -> per-link host interest
	now     time.Time
	down    map[string]bool            // mesh id -> stopped (death)
	cut     map[string]map[string]bool // segment -> mesh ids partitioned off it
}

type fabricPort struct {
	mesh *Mesh
	link int
}

func newFabric() *fabric {
	return &fabric{
		members: map[string][]fabricPort{},
		meshes:  map[string]*Mesh{},
		hosts:   map[string][][]string{},
		now:     time.Unix(1000, 0),
		down:    map[string]bool{},
		cut:     map[string]map[string]bool{},
	}
}

func (f *fabric) add(id string, segments ...string) *Mesh {
	m := New(id, segments, fastCfg())
	f.meshes[id] = m
	f.hosts[id] = make([][]string, len(segments))
	for li, seg := range segments {
		f.members[seg] = append(f.members[seg], fabricPort{mesh: m, link: li})
	}
	return m
}

func (f *fabric) setHost(id string, link int, patterns ...string) {
	f.hosts[id][link] = patterns
	f.meshes[id].HostInterestChanged(link)
}

// partition severs one mesh's port on one segment (netsim's partition
// model collapsed to "its frames stop arriving").
func (f *fabric) partition(seg, id string) {
	if f.cut[seg] == nil {
		f.cut[seg] = map[string]bool{}
	}
	f.cut[seg][id] = true
}

func (f *fabric) heal(seg, id string) { delete(f.cut[seg], id) }

// step advances the fake clock one millisecond and delivers every due
// advertisement to every live peer on the same segment.
func (f *fabric) step() {
	f.now = f.now.Add(time.Millisecond)
	type delivery struct {
		to   fabricPort
		v    any
		from string
		seg  string
	}
	var deliveries []delivery
	for id, m := range f.meshes {
		if f.down[id] {
			continue
		}
		acts := m.Actions(f.now, f.hosts[id])
		collect := func(link int, v any) {
			seg := segmentOf(f, m, link)
			if f.cut[seg][id] {
				return // sender partitioned off this segment
			}
			for _, port := range f.members[seg] {
				if port.mesh == m || f.down[port.mesh.ID()] || f.cut[seg][port.mesh.ID()] {
					continue
				}
				deliveries = append(deliveries, delivery{to: port, v: v, from: id, seg: seg})
			}
		}
		for _, h := range acts.Hellos {
			collect(h.Link, h.Ad)
		}
		for _, i := range acts.Interests {
			collect(i.Link, i.Ad)
		}
	}
	for _, d := range deliveries {
		switch ad := d.v.(type) {
		case HelloAd:
			d.to.mesh.HandleHello(d.to.link, ad, f.now)
		case InterestAd:
			d.to.mesh.HandleInterest(d.to.link, ad, f.now)
		}
	}
}

func segmentOf(f *fabric, m *Mesh, link int) string {
	for seg, ports := range f.members {
		for _, p := range ports {
			if p.mesh == m && p.link == link {
				return seg
			}
		}
	}
	panic("unknown link")
}

func (f *fabric) run(steps int) {
	for i := 0; i < steps; i++ {
		f.step()
	}
}

func states(m *Mesh) string {
	st := m.Snapshot()
	parts := make([]string, 0, len(st.Links))
	for _, l := range st.Links {
		parts = append(parts, fmt.Sprintf("%s=%s", l.Name, l.State))
	}
	return strings.Join(parts, " ")
}

// TestElectionTriangle: three routers closing a cycle over three segments
// elect the lowest id as root and block exactly one redundant port, so the
// segment graph becomes a tree.
func TestElectionTriangle(t *testing.T) {
	f := newFabric()
	a := f.add("ra", "S1", "S2")
	b := f.add("rb", "S2", "S3")
	c := f.add("rc", "S3", "S1")
	f.run(60)

	for _, m := range []*Mesh{a, b, c} {
		if got := m.Snapshot().Root; got != "ra" {
			t.Fatalf("%s root = %q, want ra", m.ID(), got)
		}
	}
	if st := a.Snapshot(); st.RootPort != -1 || !a.Forwarding(0) || !a.Forwarding(1) {
		t.Fatalf("root ports: %+v %s", st, states(a))
	}
	if st := b.Snapshot(); st.Parent != "ra" || !b.Forwarding(0) || !b.Forwarding(1) {
		t.Fatalf("rb: parent %q states %s", st.Parent, states(b))
	}
	// rc loses the designated election on S3 to rb (same root, same cost,
	// higher id) and blocks it: the cycle is cut exactly once.
	if st := c.Snapshot(); st.Parent != "ra" || c.Forwarding(0) || !c.Forwarding(1) {
		t.Fatalf("rc: parent %q states %s", st.Parent, states(c))
	}
}

// TestRootDeathReelection: when the root dies, the orphaned routers
// converge on the next-lowest id, and the previously blocked redundant
// port unblocks to reconnect the tree.
func TestRootDeathReelection(t *testing.T) {
	f := newFabric()
	b := f.add("rb", "S2", "S3")
	c := f.add("rc", "S3", "S1")
	f.add("ra", "S1", "S2")
	f.run(60)
	if c.Forwarding(0) {
		t.Fatalf("precondition: rc S3 should be blocked, got %s", states(c))
	}
	genBefore := c.Gen()

	f.down["ra"] = true
	f.run(200) // dead interval (4x5ms) + count-to-infinity cap + re-election

	for _, m := range []*Mesh{b, c} {
		if got := m.Snapshot().Root; got != "rb" {
			t.Fatalf("%s root after death = %q, want rb (state %s)", m.ID(), got, states(m))
		}
	}
	// The surviving topology is a line S2-rb-S3-rc-S1: everything forwards.
	if !b.Forwarding(0) || !b.Forwarding(1) || !c.Forwarding(0) || !c.Forwarding(1) {
		t.Fatalf("post-death states: rb %s, rc %s", states(b), states(c))
	}
	if st := c.Snapshot(); st.Parent != "rb" {
		t.Fatalf("rc parent = %q, want rb", st.Parent)
	}
	if c.Gen() == genBefore {
		t.Fatal("topology change must bump the generation (wants caches would go stale)")
	}
}

// TestPartitionHealReelection: partitioning the root off one segment makes
// the stranded router re-root its path through the redundant link; healing
// restores the original tree.
func TestPartitionHealReelection(t *testing.T) {
	f := newFabric()
	b := f.add("rb", "S2", "S3")
	f.add("ra", "S1", "S2")
	f.add("rc", "S3", "S1")
	f.run(60)
	if st := b.Snapshot(); st.RootPort != 0 {
		t.Fatalf("precondition: rb root port should be S2, got %d", st.RootPort)
	}

	f.partition("S2", "ra")
	f.run(120)
	// rb still reaches root ra, but now via S3-rc-S1.
	if st := b.Snapshot(); st.Root != "ra" || st.RootPort != 1 || st.Parent != "rc" {
		t.Fatalf("partitioned rb = %+v (%s)", st, states(b))
	}

	f.heal("S2", "ra")
	f.run(120)
	if st := b.Snapshot(); st.Root != "ra" || st.RootPort != 0 || st.Parent != "ra" {
		t.Fatalf("healed rb = %+v (%s)", st, states(b))
	}
}

// TestInterestPropagatesHopByHop: host interest on a leaf segment is
// advertised up the line with split horizon, so the far router learns to
// forward toward it while the leaf's own segment hears nothing back.
func TestInterestPropagatesHopByHop(t *testing.T) {
	f := newFabric()
	a := f.add("ra", "S1", "S2")
	b := f.add("rb", "S2", "S3")
	f.run(40)

	f.setHost("rb", 1, "mkt.nyse.>") // daemons on S3 want mkt.nyse.>
	f.run(40)

	s := subject.MustParse("mkt.nyse.ibm")
	if !a.WantsRemote(1, s) {
		t.Fatal("ra should have learned S3's interest through rb's ad on S2")
	}
	if a.WantsRemote(0, s) {
		t.Fatal("split horizon: nothing on S1 advertised this interest")
	}
	if b.WantsRemote(1, s) {
		t.Fatal("rb must not hear its own hosts' interest back as remote interest")
	}

	// Withdrawal: when the host interest goes away, the remote entry
	// expires after 4 refresh intervals and the generation moves.
	gen := a.Gen()
	f.setHost("rb", 1)
	f.run(120)
	if a.WantsRemote(1, s) {
		t.Fatal("withdrawn interest must expire upstream")
	}
	if a.Gen() == gen {
		t.Fatal("interest expiry must bump the generation")
	}
}

// TestInterestAggregatedTransitively: a hop that has already aggregated to
// the 64-pattern cap stays capped at the next hop — the mesh never
// explodes an aggregate back into specifics, and re-advertisements stay
// small no matter how many leaves sit behind a link.
func TestInterestAggregatedTransitively(t *testing.T) {
	f := newFabric()
	a := f.add("ra", "S1", "S2")
	f.add("rb", "S2", "S3")
	f.run(40)

	var pats []string
	for i := 0; i < 200; i++ {
		pats = append(pats, fmt.Sprintf("fam%03d.leaf.%d", i, i))
	}
	f.setHost("rb", 1, pats...)
	f.run(40)

	st := a.Snapshot()
	var learned []string
	for _, l := range st.Links {
		if l.Name == "S2" {
			learned = l.Patterns
		}
	}
	if len(learned) == 0 || len(learned) > 64 {
		t.Fatalf("ra learned %d patterns, want 1..64 aggregated", len(learned))
	}
	for _, p := range learned {
		if !strings.HasSuffix(p, "."+subject.WildcardRest) && p != subject.WildcardRest {
			t.Fatalf("aggregated ad leaked a specific pattern %q", p)
		}
	}
	if !a.WantsRemote(1, subject.MustParse("fam123.leaf.123")) {
		t.Fatal("aggregation must only widen: the original subject still matches")
	}
}

// TestDebounceCoalescesChurn: a flapping subscription produces at most one
// re-advertisement per debounce window per link, not one per flap.
func TestDebounceCoalescesChurn(t *testing.T) {
	f := newFabric()
	b := f.add("rb", "S2", "S3")
	f.add("ra", "S1", "S2")
	f.run(40)

	before := b.Readverts()
	// 30 flaps inside ~3 debounce windows (debounce 2ms, 1ms steps).
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			f.setHost("rb", 1, "flappy.>")
		} else {
			f.setHost("rb", 1)
		}
		f.step()
	}
	f.run(10)
	emitted := b.Readverts() - before
	if emitted > 12 {
		t.Fatalf("30 flaps emitted %d re-advertisements; debounce should coalesce them", emitted)
	}
}

// TestBlockedPortQuiet: interest is never advertised into a blocked port,
// and a blocked port contributes nothing to other links' ads.
func TestBlockedPortQuiet(t *testing.T) {
	f := newFabric()
	c := f.add("rc", "S3", "S1")
	f.add("ra", "S1", "S2")
	f.add("rb", "S2", "S3")
	f.run(60)
	if c.Forwarding(0) {
		t.Fatalf("precondition: rc S3 blocked, got %s", states(c))
	}
	// Interest on S1 (rc's forwarding side): rc must not advertise it into
	// blocked S3.
	f.setHost("rc", 1, "deep.>")
	base := c.Readverts()
	f.run(60)
	st := c.Snapshot()
	_ = st
	s := subject.MustParse("deep.x")
	// rb hears nothing from rc on S3 (rc is blocked there); it learns the
	// interest via ra instead (S1 hosts are ra's responsibility too —
	// ra hears the same daemons). Here interest was injected as rc's host
	// table only, so rb must NOT know it.
	f.run(20)
	if f.meshes["rb"].WantsRemote(1, s) {
		t.Fatal("blocked rc leaked interest into S3")
	}
	if c.Readverts() == base {
		// rc still advertises into its forwarding S1 link; just ensure the
		// machinery ran at all (refresh interval passed).
		t.Log("no re-advertisements counted; acceptable if S1 ad was unchanged")
	}
}

// TestVectorOrdering pins the priority-vector comparison.
func TestVectorOrdering(t *testing.T) {
	cases := []struct {
		r1 string
		c1 int64
		i1 string
		r2 string
		c2 int64
		i2 string
		want bool
	}{
		{"a", 5, "z", "b", 0, "a", true},  // lower root wins regardless of cost
		{"a", 1, "z", "a", 2, "a", true},  // lower cost wins
		{"a", 1, "b", "a", 1, "c", true},  // lower id breaks the tie
		{"a", 1, "c", "a", 1, "b", false},
	}
	for i, tc := range cases {
		if got := betterVector(tc.r1, tc.c1, tc.i1, tc.r2, tc.c2, tc.i2); got != tc.want {
			t.Fatalf("case %d: betterVector = %v, want %v", i, got, tc.want)
		}
	}
}

// TestTickInterval pins the driver clock bounds.
func TestTickInterval(t *testing.T) {
	m := New("x", []string{"a", "b"}, Config{Debounce: 100 * time.Millisecond})
	if got := m.TickInterval(); got != 25*time.Millisecond {
		t.Fatalf("tick = %v", got)
	}
	m = New("x", []string{"a"}, Config{Debounce: time.Millisecond})
	if got := m.TickInterval(); got != time.Millisecond {
		t.Fatalf("tick floor = %v", got)
	}
}
