package mesh

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"infobus/internal/subject"
)

// PortState is a link's role in the spanning tree.
type PortState uint8

const (
	// PortBlocked suppresses a redundant link: the router neither forwards
	// data across it nor advertises interest into it. Hellos still flow,
	// so the link re-activates the moment the tree needs it.
	PortBlocked PortState = iota
	// PortForwarding carries data: the link is the router's root port or
	// the router is the designated router on that segment.
	PortForwarding
)

func (s PortState) String() string {
	if s == PortForwarding {
		return "forwarding"
	}
	return "blocked"
}

// Config tunes the mesh protocol. Zero values take the documented
// defaults. All timers are wall-clock; tests on the simulated network use
// millisecond-scale values (like the reliable-protocol helpers).
type Config struct {
	// HelloInterval is the steady-state period between hello broadcasts
	// per link. Topology changes trigger immediate extra hellos, so this
	// governs failure DETECTION, not convergence. Default 100ms.
	HelloInterval time.Duration
	// DeadFactor: a neighbor unheard for DeadFactor hello intervals is
	// declared dead and the tree re-elects. Default 4.
	DeadFactor int
	// Debounce batches interest re-advertisement: after a change, the
	// router waits this long for further churn before advertising, so a
	// flapping leaf costs one ad per window per hop instead of one per
	// flap (the Figure 8 constraint, applied per hop). Default 50ms.
	Debounce time.Duration
	// InterestRefresh is the steady-state re-advertisement period; heard
	// interest expires after 4 refresh intervals without one. Default 1s.
	InterestRefresh time.Duration
	// MaxPatterns caps one interest advertisement, aggregating wider sets
	// to wildcard prefixes (subject.AggregatePatterns) exactly as host
	// daemons do at 64. Default 64.
	MaxPatterns int
	// MaxHops overrides the envelope hop budget while the mesh is active:
	// the tree is loop-free, so the budget only bounds the tree diameter
	// (busproto.MaxHops = 8 assumes today's shallow pairwise bridging).
	// Default 64, enough for the 50–100 segment target. Capped at 255 by
	// the envelope's uint8.
	MaxHops int
	// StatusInterval is the period between "_sys.mesh.status.<node>"
	// introspection snapshots. Default 1s; negative disables them.
	StatusInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.HelloInterval <= 0 {
		c.HelloInterval = 100 * time.Millisecond
	}
	if c.DeadFactor <= 0 {
		c.DeadFactor = 4
	}
	if c.Debounce <= 0 {
		c.Debounce = 50 * time.Millisecond
	}
	if c.InterestRefresh <= 0 {
		c.InterestRefresh = time.Second
	}
	if c.MaxPatterns <= 0 {
		c.MaxPatterns = 64
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
	if c.MaxHops > 255 {
		c.MaxHops = 255
	}
	if c.StatusInterval == 0 {
		c.StatusInterval = time.Second
	}
	return c
}

// neighborHello is the freshest config vector heard from one neighbor
// router on one link.
type neighborHello struct {
	ad      HelloAd
	expires time.Time
}

// neighborInterest is one neighbor router's advertised subtree interest on
// one link.
type neighborInterest struct {
	raw     []string // sorted pattern strings, for ad recomputation
	expires time.Time
}

type link struct {
	name  string
	state PortState

	hellos   map[string]neighborHello    // router id -> freshest hello
	interest map[string]neighborInterest // router id -> subtree interest

	// compiled flattens every neighbor's patterns for the wants check,
	// rebuilt on any interest change (changes are ad-rate, checks are
	// cache-miss-rate).
	compiled []subject.Pattern

	// lastAd is the interest set last advertised into this link; adDirty
	// marks it stale, adDue the debounced send time.
	lastAd     []string
	adDirty    bool
	adDue      time.Time
	refreshDue time.Time
}

// Mesh is one router's view of the self-organizing tree. The router feeds
// it received ads (HandleHello / HandleInterest / HostInterestChanged),
// drives its clock (Actions), and consults it when forwarding (Forwarding,
// WantsRemote, Gen).
type Mesh struct {
	id  string
	cfg Config

	// fwdMask is the hot-path port-state word: bit i set = link i
	// forwarding. One atomic load decides both ends of a forward.
	fwdMask atomic.Uint64
	// gen counts forwarding-relevant changes (topology or remote
	// interest); the router's per-attachment wants caches invalidate on
	// mismatch, which is the PR 9 fix for stale entries forwarding into a
	// dead subtree.
	gen atomic.Uint64

	mu    sync.Mutex
	links []*link
	// Elected tree state.
	root     string
	cost     int64
	rootPort int // link index, -1 when self is root
	parent   string
	seq      int64
	// Clocks.
	helloDue       time.Time
	helloTriggered bool
	statusDue      time.Time

	// Introspection counters, mirrored into router telemetry by the
	// driver.
	topoChanges uint64
	readverts   uint64
}

// New builds the state machine for a router with the given unique id and
// one link per attachment, in attachment order. Initially the router
// believes itself root with every port forwarding — the first hello
// exchange corrects it.
func New(id string, linkNames []string, cfg Config) *Mesh {
	m := &Mesh{
		id:       id,
		cfg:      cfg.withDefaults(),
		root:     id,
		rootPort: -1,
	}
	for _, name := range linkNames {
		m.links = append(m.links, &link{
			name:     name,
			state:    PortForwarding,
			hellos:   make(map[string]neighborHello),
			interest: make(map[string]neighborInterest),
		})
	}
	m.storeMask()
	return m
}

// ID returns the router's mesh id.
func (m *Mesh) ID() string { return m.id }

// MaxHops returns the envelope hop budget to enforce while the mesh is
// active.
func (m *Mesh) MaxHops() int { return m.cfg.MaxHops }

// Gen returns the forwarding-generation counter; it changes whenever a
// previously computed wants/forward answer may be stale.
func (m *Mesh) Gen() uint64 { return m.gen.Load() }

// Forwarding reports whether the link is in the forwarding state. One
// atomic load, zero allocations: it runs per forwarded publication.
func (m *Mesh) Forwarding(li int) bool {
	return m.fwdMask.Load()&(1<<uint(li)) != 0
}

func (m *Mesh) storeMask() {
	var mask uint64
	for i, l := range m.links {
		if l.state == PortForwarding && i < 64 {
			mask |= 1 << uint(i)
		}
	}
	m.fwdMask.Store(mask)
}

// bump marks every cached forwarding decision stale.
func (m *Mesh) bump() { m.gen.Add(1) }

// vector ordering: lower root id, then lower cost, then lower router id —
// the 802.1D priority vector with the id standing in for both bridge
// priority and port id (attachment order breaks the final tie).
func betterVector(root1 string, cost1 int64, id1 string, root2 string, cost2 int64, id2 string) bool {
	if root1 != root2 {
		return root1 < root2
	}
	if cost1 != cost2 {
		return cost1 < cost2
	}
	return id1 < id2
}

// HandleHello feeds one received hello. It reports whether the tree
// changed (the driver then knows a triggered hello round is pending).
func (m *Mesh) HandleHello(li int, ad HelloAd, now time.Time) bool {
	if ad.Router == m.id {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if li < 0 || li >= len(m.links) {
		return false
	}
	l := m.links[li]
	l.hellos[ad.Router] = neighborHello{
		ad:      ad,
		expires: now.Add(time.Duration(m.cfg.DeadFactor) * m.cfg.HelloInterval),
	}
	return m.recompute(now)
}

// HandleInterest feeds one received interest advertisement.
func (m *Mesh) HandleInterest(li int, ad InterestAd, now time.Time) {
	if ad.Router == m.id {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if li < 0 || li >= len(m.links) {
		return
	}
	l := m.links[li]
	raw := append([]string(nil), ad.Patterns...)
	sort.Strings(raw)
	prev, had := l.interest[ad.Router]
	l.interest[ad.Router] = neighborInterest{
		raw:     raw,
		expires: now.Add(4 * m.cfg.InterestRefresh),
	}
	if had && equalStrings(prev.raw, raw) {
		return // refresh only: answers unchanged, caches survive
	}
	m.interestChangedLocked(li, now)
}

// HostInterestChanged tells the mesh that the set of host (daemon)
// interest on a link changed, so ads into the other links are stale. The
// router's own wants caches handle the local side already.
func (m *Mesh) HostInterestChanged(li int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.markOthersDirtyLocked(li, time.Now())
}

// interestChangedLocked recompiles the link's wants patterns and schedules
// re-advertisement on every other link.
func (m *Mesh) interestChangedLocked(li int, now time.Time) {
	m.recompileLocked(li)
	m.bump()
	m.markOthersDirtyLocked(li, now)
}

func (m *Mesh) markOthersDirtyLocked(except int, now time.Time) {
	for i, l := range m.links {
		if i == except {
			continue
		}
		if !l.adDirty {
			l.adDirty = true
			l.adDue = now.Add(m.cfg.Debounce)
		}
	}
}

func (m *Mesh) recompileLocked(li int) {
	l := m.links[li]
	var compiled []subject.Pattern
	for _, ni := range l.interest {
		for _, p := range ni.raw {
			pat, err := subject.ParsePattern(p)
			if err != nil {
				continue
			}
			compiled = append(compiled, pat)
		}
	}
	l.compiled = compiled
}

// recompute re-runs the election from the current hello tables. Caller
// holds m.mu. Reports whether anything observable changed.
func (m *Mesh) recompute(now time.Time) bool {
	// Root and root port: the best vector among everything heard, against
	// the claim "I am root". Offers costing more than the hop budget are
	// unusable AND poisoned: when the root dies, its orphaned claims
	// bounce between survivors with the cost inflating one hop per
	// exchange (distance-vector count-to-infinity); the cap turns that
	// into fast termination, after which the true new root wins.
	maxCost := int64(m.cfg.MaxHops)
	root, cost, parent, rootPort := m.id, int64(0), "", -1
	for i, l := range m.links {
		for _, nh := range l.hellos {
			if now.After(nh.expires) {
				continue
			}
			offRoot, offCost := nh.ad.Root, nh.ad.Cost+1
			if offCost > maxCost {
				continue
			}
			if betterVector(offRoot, offCost, nh.ad.Router, root, cost, parent) && offRoot < m.id {
				root, cost, parent, rootPort = offRoot, offCost, nh.ad.Router, i
			}
		}
	}
	// Port roles: the root port forwards; any other link forwards iff this
	// router is designated on it — its (root, cost, id) vector beats every
	// live neighbor's on that segment.
	changed := root != m.root || cost != m.cost || parent != m.parent || rootPort != m.rootPort
	m.root, m.cost, m.parent, m.rootPort = root, cost, parent, rootPort
	for i, l := range m.links {
		state := PortForwarding
		if i != rootPort {
			for _, nh := range l.hellos {
				if now.After(nh.expires) || nh.ad.Cost > maxCost {
					continue
				}
				if betterVector(nh.ad.Root, nh.ad.Cost, nh.ad.Router, root, cost, m.id) {
					state = PortBlocked
					break
				}
			}
		}
		if state != l.state {
			l.state = state
			changed = true
		}
	}
	if changed {
		m.storeMask()
		m.bump()
		m.topoChanges++
		m.helloTriggered = true
		// Every link's advertised interest may now be wrong (sources
		// moved between subtrees): re-advertise everywhere, debounced.
		m.markOthersDirtyLocked(-1, now)
	}
	return changed
}

// WantsRemote reports whether any neighbor router on the link advertised
// subtree interest matching the subject. Runs on the router's wants-cache
// MISS path only; hits never reach here.
func (m *Mesh) WantsRemote(li int, s subject.Subject) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if li < 0 || li >= len(m.links) {
		return false
	}
	for _, pat := range m.links[li].compiled {
		if pat.Matches(s) {
			return true
		}
	}
	return false
}

// HelloOut is one hello to broadcast on one link.
type HelloOut struct {
	Link int
	Ad   HelloAd
}

// InterestOut is one interest advertisement to broadcast on one link.
type InterestOut struct {
	Link int
	Ad   InterestAd
}

// Actions is what the driver must put on the wire after a clock tick.
type Actions struct {
	Hellos    []HelloOut
	Interests []InterestOut
	Status    *StatusAd
}

// Actions advances the protocol clock: expires dead neighbors and stale
// interest, and returns the due hello/interest/status advertisements.
// hostPatterns[i] is the current host (daemon) interest on link i — the
// driver gathers it BEFORE calling, so the mesh lock never nests inside an
// attachment lock.
func (m *Mesh) Actions(now time.Time, hostPatterns [][]string) Actions {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out Actions

	// Expiry: dead neighbors first (may re-elect), then stale interest.
	expired := false
	for _, l := range m.links {
		for id, nh := range l.hellos {
			if now.After(nh.expires) {
				delete(l.hellos, id)
				expired = true
			}
		}
	}
	if expired {
		m.recompute(now)
	}
	for li, l := range m.links {
		pruned := false
		for id, ni := range l.interest {
			if now.After(ni.expires) {
				delete(l.interest, id)
				pruned = true
			}
		}
		if pruned {
			m.interestChangedLocked(li, now)
		}
	}

	// Hellos: periodic, plus a triggered round after any tree change.
	if m.helloTriggered || !now.Before(m.helloDue) {
		m.helloTriggered = false
		m.helloDue = now.Add(m.cfg.HelloInterval)
		m.seq++
		links := m.linkInfoLocked(false)
		for li := range m.links {
			out.Hellos = append(out.Hellos, HelloOut{Link: li, Ad: HelloAd{
				Router: m.id, Root: m.root, Cost: m.cost, Parent: m.parent,
				Seq: m.seq, Links: links,
			}})
		}
	}

	// Interest: debounced on change, periodic refresh otherwise; only into
	// forwarding links, and only sourced from the other forwarding links
	// (a blocked subtree is served by its own designated router).
	for li, l := range m.links {
		if l.state != PortForwarding {
			l.adDirty = false
			continue
		}
		due := (l.adDirty && !now.Before(l.adDue)) || !now.Before(l.refreshDue)
		if !due {
			continue
		}
		patterns := m.adPatternsLocked(li, hostPatterns)
		refresh := !now.Before(l.refreshDue)
		if !refresh && equalStrings(patterns, l.lastAd) {
			l.adDirty = false
			continue // debounced churn cancelled itself out: stay quiet
		}
		l.lastAd = patterns
		l.adDirty = false
		l.refreshDue = now.Add(m.cfg.InterestRefresh)
		m.readverts++
		out.Interests = append(out.Interests, InterestOut{Link: li, Ad: InterestAd{
			Router: m.id, Seq: m.seq, Patterns: patterns,
		}})
	}

	// Status snapshot.
	if m.cfg.StatusInterval > 0 && !now.Before(m.statusDue) {
		m.statusDue = now.Add(m.cfg.StatusInterval)
		ad := StatusAd{
			Router: m.id, Root: m.root, Cost: m.cost, Parent: m.parent,
			Seq: m.seq, Links: m.linkInfoLocked(true),
		}
		out.Status = &ad
	}
	return out
}

// adPatternsLocked computes the interest to advertise into link li: the
// union of host and neighbor-subtree interest on every OTHER forwarding
// link, re-aggregated under the pattern cap. Split horizon: interest heard
// on li never goes back into li.
func (m *Mesh) adPatternsLocked(li int, hostPatterns [][]string) []string {
	set := make(map[string]struct{})
	for i, l := range m.links {
		if i == li || l.state != PortForwarding {
			continue
		}
		if i < len(hostPatterns) {
			for _, p := range hostPatterns[i] {
				set[p] = struct{}{}
			}
		}
		for _, ni := range l.interest {
			for _, p := range ni.raw {
				set[p] = struct{}{}
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	patterns := make([]string, 0, len(set))
	for p := range set {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	return subject.AggregatePatterns(patterns, m.cfg.MaxPatterns)
}

func (m *Mesh) linkInfoLocked(withInterest bool) []LinkInfo {
	links := make([]LinkInfo, 0, len(m.links))
	for _, l := range m.links {
		li := LinkInfo{Name: l.name, State: l.state.String(), Peers: int64(len(l.hellos))}
		if withInterest {
			set := make(map[string]struct{})
			for _, ni := range l.interest {
				for _, p := range ni.raw {
					set[p] = struct{}{}
				}
			}
			pats := make([]string, 0, len(set))
			for p := range set {
				pats = append(pats, p)
			}
			sort.Strings(pats)
			li.Patterns = subject.AggregatePatterns(pats, m.cfg.MaxPatterns)
		}
		links = append(links, li)
	}
	return links
}

// Hello returns the router's current config vector as it would next be
// advertised — the discovery bootstrap answers "who's out there?" queries
// with it, so a joining router converges in one round trip instead of
// waiting out a hello interval.
func (m *Mesh) Hello() HelloAd {
	m.mu.Lock()
	defer m.mu.Unlock()
	return HelloAd{
		Router: m.id, Root: m.root, Cost: m.cost, Parent: m.parent,
		Seq: m.seq, Links: m.linkInfoLocked(false),
	}
}

// Status is a snapshot of the mesh state for tests and tooling.
type Status struct {
	Root        string
	Cost        int64
	Parent      string
	RootPort    int
	Links       []LinkInfo
	TopoChanges uint64
	Readverts   uint64
}

// Snapshot returns the current tree state.
func (m *Mesh) Snapshot() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Status{
		Root: m.root, Cost: m.cost, Parent: m.parent, RootPort: m.rootPort,
		Links: m.linkInfoLocked(true), TopoChanges: m.topoChanges, Readverts: m.readverts,
	}
}

// Readverts returns the cumulative count of interest re-advertisements
// (the mesh-flap alarm watches its rate).
func (m *Mesh) Readverts() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.readverts
}

// TopoChanges returns the cumulative count of tree recomputations that
// changed something.
func (m *Mesh) TopoChanges() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.topoChanges
}

// TickInterval is the driver's clock granularity: fine enough that the
// debounce window and triggered hellos feel immediate, coarse enough to
// stay off the profile.
func (m *Mesh) TickInterval() time.Duration {
	t := m.cfg.Debounce / 2
	if t < time.Millisecond {
		t = time.Millisecond
	}
	if t > 25*time.Millisecond {
		t = 25 * time.Millisecond
	}
	return t
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
