package mesh

import (
	"fmt"
	"strings"
	"testing"
)

func TestHelloAdRoundTrip(t *testing.T) {
	mt := MustTypes()
	in := HelloAd{
		Router: "rb", Root: "ra", Cost: 3, Parent: "ra", Seq: 42,
		Links: []LinkInfo{
			{Name: "S1", State: "forwarding", Peers: 2},
			{Name: "S2", State: "blocked", Peers: 1},
		},
	}
	payload, err := MarshalHello(mt, in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseAd(payload)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := v.(HelloAd)
	if !ok {
		t.Fatalf("parsed %T", v)
	}
	if out.Router != in.Router || out.Root != in.Root || out.Cost != in.Cost ||
		out.Parent != in.Parent || out.Seq != in.Seq || len(out.Links) != 2 ||
		out.Links[1].State != "blocked" {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestInterestAdRoundTrip(t *testing.T) {
	mt := MustTypes()
	in := InterestAd{Router: "rc", Seq: 7, Patterns: []string{"mkt.>", "news.us.*"}}
	payload, err := MarshalInterest(mt, in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseAd(payload)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := v.(InterestAd)
	if !ok || out.Router != "rc" || out.Seq != 7 || len(out.Patterns) != 2 {
		t.Fatalf("round trip: %+v (%T)", v, v)
	}
}

func TestStatusAdRoundTrip(t *testing.T) {
	mt := MustTypes()
	in := StatusAd{
		Node: "router-a", Router: "ra", Root: "ra", Cost: 0, Seq: 9,
		Links: []LinkInfo{{Name: "S1", State: "forwarding", Peers: 1, Patterns: []string{"a.>"}}},
	}
	payload, err := MarshalStatus(mt, in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseAd(payload)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := v.(StatusAd)
	if !ok || out.Node != "router-a" || len(out.Links) != 1 || len(out.Links[0].Patterns) != 1 {
		t.Fatalf("round trip: %+v (%T)", v, v)
	}
}

// TestParseAdCaps: oversized pattern lists truncate (narrowing is safe),
// invalid patterns drop without poisoning siblings, and bad structural
// shapes reject.
func TestParseAdCaps(t *testing.T) {
	mt := MustTypes()
	var pats []string
	for i := 0; i < MaxAdPatterns+50; i++ {
		pats = append(pats, fmt.Sprintf("p%d.>", i))
	}
	pats[3] = "bad..pattern"
	pats[5] = strings.Repeat("x", 600) // over subject.MaxLength
	payload, err := MarshalInterest(mt, InterestAd{Router: "r", Patterns: pats})
	if err != nil {
		t.Fatal(err)
	}
	v, err := ParseAd(payload)
	if err != nil {
		t.Fatal(err)
	}
	out := v.(InterestAd)
	if len(out.Patterns) > MaxAdPatterns {
		t.Fatalf("pattern cap not enforced: %d", len(out.Patterns))
	}
	for _, p := range out.Patterns {
		if p == "bad..pattern" || len(p) > 500 {
			t.Fatalf("invalid pattern survived: %q", p)
		}
	}

	// Missing router id rejects.
	bad, err := MarshalInterest(mt, InterestAd{Router: ""})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAd(bad); err == nil {
		t.Fatal("empty router id must reject")
	}
	// Negative cost rejects (it would win every election forever).
	badHello, err := MarshalHello(mt, HelloAd{Router: "r", Root: "r", Cost: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAd(badHello); err == nil {
		t.Fatal("negative cost must reject")
	}
	// Arbitrary junk rejects without panicking.
	if _, err := ParseAd([]byte("not a wire message")); err == nil {
		t.Fatal("junk must reject")
	}
	if _, err := ParseAd(make([]byte, maxAdBytes+1)); err == nil {
		t.Fatal("oversize payload must reject before decoding")
	}
}

// FuzzMeshAd: the mesh advertisement codec is network input on every
// segment a router attaches to; arbitrary bytes must never panic, and
// anything accepted must be within the documented caps.
func FuzzMeshAd(f *testing.F) {
	mt := MustTypes()
	seedHello, _ := MarshalHello(mt, HelloAd{
		Router: "rb", Root: "ra", Cost: 3, Parent: "ra", Seq: 42,
		Links: []LinkInfo{{Name: "S1", State: "forwarding", Peers: 2}},
	})
	seedInterest, _ := MarshalInterest(mt, InterestAd{
		Router: "rc", Seq: 7, Patterns: []string{"mkt.>", "news.us.*"},
	})
	seedStatus, _ := MarshalStatus(mt, StatusAd{
		Node: "router-a", Router: "ra", Root: "ra", Seq: 9,
		Links: []LinkInfo{{Name: "S1", State: "forwarding", Patterns: []string{"a.>"}}},
	})
	f.Add(seedHello)
	f.Add(seedInterest)
	f.Add(seedStatus)
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ParseAd(data)
		if err != nil {
			return
		}
		switch ad := v.(type) {
		case HelloAd:
			if ad.Router == "" || ad.Root == "" || ad.Cost < 0 {
				t.Fatalf("accepted invalid hello %+v", ad)
			}
			if len(ad.Links) > MaxAdLinks {
				t.Fatalf("link cap breached: %d", len(ad.Links))
			}
		case InterestAd:
			if ad.Router == "" || len(ad.Patterns) > MaxAdPatterns {
				t.Fatalf("accepted invalid interest %+v", ad)
			}
		case StatusAd:
			if ad.Router == "" || len(ad.Links) > MaxAdLinks {
				t.Fatalf("accepted invalid status %+v", ad)
			}
			for _, l := range ad.Links {
				if len(l.Patterns) > MaxAdPatterns {
					t.Fatalf("link pattern cap breached: %d", len(l.Patterns))
				}
			}
		default:
			t.Fatalf("unknown accepted type %T", v)
		}
	})
}
