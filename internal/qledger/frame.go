// Package qledger replicates the guaranteed-delivery ledger across bus
// peers: each batch the publisher's write-ahead ledger commits is mirrored
// to N replica hosts over "_sys.repl.>" subjects, and PublishGuaranteed
// returns only once a majority of the replication group holds the batch
// durably. When a publisher dies, an elected recovery coordinator
// (internal/rmi election over the bus itself) reads a majority of the
// replicas, unions their pending sets, and replays the unacknowledged
// publications preserving the original (origin, id) identity — so
// consumer-side dedup absorbs the replay and delivery stays exactly-once
// under normal operation.
//
// With ReplicationFactor 0 the package is never attached and the
// single-node guaranteed path is untouched.
package qledger

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame is one replication protocol message. The encoding is
// self-describing in the CRISTAL sense the paper motivates for stored
// data: a version byte plus tagged fields, so a newer node can add fields
// and an older one skips what it does not know instead of desynchronizing
// on a positional layout.
//
// Layout: 'Q' | version | type | fields, each field being
// uvarint tag | uvarint len | len bytes. Unknown tags are skipped.
type Frame struct {
	Type byte
	// Origin is the publisher identity the frame is about (the token
	// consumer-side dedup keys on).
	Origin string
	// Seq is the publisher-assigned chunk sequence number (FrameBatch) or
	// the sequence being acknowledged (FrameAck).
	Seq uint64
	// Replica identifies the responding replica (FrameAck, FrameReadRep) —
	// a stable per-store token, so a restarted replica is not counted as a
	// new group member.
	Replica string
	// Records is a run of ledger records (ledger.NextRecord format):
	// the mirrored batch (FrameBatch), a replica's pending set
	// (FrameReadRep), or ack records trimming recovered entries
	// (FrameRelease).
	Records []byte
	// Round correlates a FrameReadRep with its FrameReadReq.
	Round uint64
	// MaxSeq is the replica's contiguous high-water mark: every chunk with
	// Seq <= MaxSeq is applied on that replica, letting one ack close
	// straggling earlier waits.
	MaxSeq uint64
}

// Frame types.
const (
	// FrameBatch mirrors one committed ledger batch chunk to the replicas.
	FrameBatch = 1 + iota
	// FrameAck acknowledges durable application of a chunk.
	FrameAck
	// FrameBeat is the publisher's liveness beacon.
	FrameBeat
	// FrameReadReq asks the replicas for their pending set for an origin.
	FrameReadReq
	// FrameReadRep answers a FrameReadReq.
	FrameReadRep
	// FrameRelease distributes ack records for recovered entries so the
	// replicas can trim them.
	FrameRelease
)

// Field tags.
const (
	tagOrigin  = 1
	tagSeq     = 2
	tagReplica = 3
	tagRecords = 4
	tagRound   = 5
	tagMaxSeq  = 6
)

const (
	frameMagic   = 'Q'
	frameVersion = 1
	// maxFrameLen bounds a whole frame — mirrors the ledger's 16 MB record
	// cap, since a frame carries at most one batch.
	maxFrameLen = 1 << 24
	// maxTokenLen bounds identity tokens (origin, replica).
	maxTokenLen = 256
	// maxFields bounds the field count so a hostile frame of empty fields
	// cannot spin the parser.
	maxFields = 64
)

// Frame errors.
var (
	ErrBadFrame = errors.New("qledger: malformed frame")
)

func appendField(dst []byte, tag uint64, val []byte) []byte {
	dst = binary.AppendUvarint(dst, tag)
	dst = binary.AppendUvarint(dst, uint64(len(val)))
	return append(dst, val...)
}

func appendUintField(dst []byte, tag, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return appendField(dst, tag, tmp[:n])
}

// AppendFrame encodes f, appending to dst. Zero-valued fields are omitted.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, frameMagic, frameVersion, f.Type)
	if f.Origin != "" {
		dst = appendField(dst, tagOrigin, []byte(f.Origin))
	}
	if f.Seq != 0 {
		dst = appendUintField(dst, tagSeq, f.Seq)
	}
	if f.Replica != "" {
		dst = appendField(dst, tagReplica, []byte(f.Replica))
	}
	if len(f.Records) != 0 {
		dst = appendField(dst, tagRecords, f.Records)
	}
	if f.Round != 0 {
		dst = appendUintField(dst, tagRound, f.Round)
	}
	if f.MaxSeq != 0 {
		dst = appendUintField(dst, tagMaxSeq, f.MaxSeq)
	}
	return dst
}

// ParseFrame decodes one frame. Records aliases data — callers that
// retain it past the delivery must copy. Every length is bounds-checked;
// arbitrary input returns ErrBadFrame, never panics.
func ParseFrame(data []byte) (Frame, error) {
	var f Frame
	if len(data) > maxFrameLen {
		return f, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(data))
	}
	if len(data) < 3 || data[0] != frameMagic {
		return f, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if data[1] != frameVersion {
		return f, fmt.Errorf("%w: version %d", ErrBadFrame, data[1])
	}
	f.Type = data[2]
	if f.Type == 0 || f.Type > FrameRelease {
		return f, fmt.Errorf("%w: type %d", ErrBadFrame, f.Type)
	}
	rest := data[3:]
	for fields := 0; len(rest) > 0; fields++ {
		if fields >= maxFields {
			return f, fmt.Errorf("%w: too many fields", ErrBadFrame)
		}
		tag, n := binary.Uvarint(rest)
		if n <= 0 {
			return f, fmt.Errorf("%w: field tag", ErrBadFrame)
		}
		rest = rest[n:]
		ln, n := binary.Uvarint(rest)
		if n <= 0 || ln > uint64(len(rest[n:])) {
			return f, fmt.Errorf("%w: field length", ErrBadFrame)
		}
		val := rest[n : n+int(ln)]
		rest = rest[n+int(ln):]
		switch tag {
		case tagOrigin, tagReplica:
			if len(val) > maxTokenLen {
				return f, fmt.Errorf("%w: token %d bytes", ErrBadFrame, len(val))
			}
			if tag == tagOrigin {
				f.Origin = string(val)
			} else {
				f.Replica = string(val)
			}
		case tagSeq, tagRound, tagMaxSeq:
			v, n := binary.Uvarint(val)
			if n <= 0 || n != len(val) {
				return f, fmt.Errorf("%w: uint field", ErrBadFrame)
			}
			switch tag {
			case tagSeq:
				f.Seq = v
			case tagRound:
				f.Round = v
			default:
				f.MaxSeq = v
			}
		case tagRecords:
			f.Records = val
		default:
			// Unknown tag from a newer peer: skip (self-describing
			// forward compatibility).
		}
	}
	return f, nil
}
