package qledger

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"infobus/internal/busproto"
	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/telemetry"
)

// TestReplicatedTraceChain is the causal-tracing acceptance path at
// ReplicationFactor 2: every guaranteed publication is traced
// (TraceSampling 1), so a monitor that feeds the delivered envelopes plus
// the "_sys.trace.<node>" quorum sidecars into a TraceAssembler
// reconstructs the full stage chain — ledger stage, group commit, replica
// chunk, quorum ack, publisher daemon, consumer daemon, delivery lane —
// as ONE route with per-stage latency histograms.
func TestReplicatedTraceChain(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	dir := t.TempDir()
	pub, _ := newReplHost(t, seg, "pub", core.HostConfig{
		LedgerPath: filepath.Join(dir, "pub.ledger"),
		Telemetry:  core.TelemetryConfig{TraceSampling: 1},
	}, fastRepl(2, ""))
	newReplHost(t, seg, "r1", core.HostConfig{}, fastRepl(0, filepath.Join(dir, "r1")))
	newReplHost(t, seg, "r2", core.HostConfig{}, fastRepl(0, filepath.Join(dir, "r2")))

	cons := newPlainHost(t, seg, "cons")
	cbus, err := cons.NewBus("consumer")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cbus.Subscribe("orders.>")
	if err != nil {
		t.Fatal(err)
	}
	mon := newPlainHost(t, seg, "mon")
	mbus, err := mon.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	sidecars, err := mbus.Subscribe("_sys.trace.>")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // interest propagation

	pbus, err := pub.NewBus("producer")
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := pbus.PublishGuaranteed("orders.new", fmt.Sprintf("o-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	// Collect the n traced deliveries and the n quorum sidecars; their
	// relative order is a race (delivery proceeds concurrently with the
	// quorum wait), which is exactly what the assembler's parking handles.
	asm := telemetry.NewTraceAssembler()
	var deliv []core.Event
	var sides int
	deadline := time.After(15 * time.Second)
	for len(deliv) < n || sides < n {
		select {
		case ev := <-sub.C:
			if ev.TraceID == 0 || len(ev.Trace) == 0 {
				t.Fatalf("delivery not traced at sampling 1: %+v", ev)
			}
			deliv = append(deliv, ev)
		case ev := <-sidecars.C:
			obj, ok := ev.Value.(*mop.Object)
			if !ok {
				t.Fatalf("sidecar value = %T", ev.Value)
			}
			node, id, hops, ok := telemetry.ParseTraceObject(obj)
			if !ok {
				t.Fatalf("unparseable sidecar %v", obj)
			}
			if node != "pub" || id == 0 {
				t.Fatalf("sidecar node=%q id=%d", node, id)
			}
			if len(hops) != 1 || hops[0].Kind != busproto.HopQuorumAck {
				t.Fatalf("sidecar hops = %+v, want one quorum-ack", hops)
			}
			asm.AddSidecar(id, hops)
			sides++
		case <-deadline:
			t.Fatalf("collected %d/%d deliveries, %d/%d sidecars",
				len(deliv), n, sides, n)
		}
	}
	for _, ev := range deliv {
		asm.AddTraced(ev.TraceID, ev.Trace)
	}

	routes := asm.Routes()
	if len(routes) != 1 {
		t.Fatalf("routes = %d, want 1 (%+v)", len(routes), routes)
	}
	r := routes[0]
	want := []string{
		"pub/ledger-stage", "pub/group-commit", "pub/repl-chunk",
		"pub/quorum-ack", "pub", "cons", "cons/lane-enq", "cons/lane-pop",
	}
	if len(r.Path) != len(want) {
		t.Fatalf("path = %v, want %v", r.Path, want)
	}
	for i := range want {
		if r.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v", r.Path, want)
		}
	}
	if r.Count != n {
		t.Fatalf("route count = %d, want %d", r.Count, n)
	}
	if len(r.Hops) != len(want)-1 {
		t.Fatalf("hops = %d, want %d", len(r.Hops), len(want)-1)
	}
	for i, h := range r.Hops {
		if h.Count != n {
			t.Errorf("hop %d (%s → %s) count = %d, want %d", i, h.From, h.To, h.Count, n)
		}
		if h.MeanNs < 0 {
			t.Errorf("hop %d mean = %v", i, h.MeanNs)
		}
	}
	if r.E2E.MeanNs <= 0 {
		t.Fatalf("end-to-end mean = %v", r.E2E.MeanNs)
	}
	render := asm.Render()
	for _, stage := range []string{"quorum-ack", "group-commit", "lane-pop", "end-to-end"} {
		if !strings.Contains(render, stage) {
			t.Fatalf("render missing %q:\n%s", stage, render)
		}
	}
}
