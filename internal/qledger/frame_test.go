package qledger

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"infobus/internal/ledger"
)

func appendTestMessage(dst []byte, id uint64, subj, payload string) []byte {
	return ledger.AppendMessageRecord(dst, id, subj, []byte(payload))
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: FrameBatch, Origin: "sim:1#aa", Seq: 42, Records: []byte("recs")},
		{Type: FrameAck, Origin: "sim:1#aa", Seq: 7, Replica: "r-01", MaxSeq: 6},
		{Type: FrameBeat, Origin: "sim:2#bb"},
		{Type: FrameReadReq, Origin: "sim:1#aa", Round: 3},
		{Type: FrameReadRep, Origin: "sim:1#aa", Round: 3, Replica: "r-02", Records: []byte{1, 2, 3}, MaxSeq: 9},
		{Type: FrameRelease, Origin: "sim:1#aa", Records: []byte("acks")},
	}
	for _, want := range cases {
		got, err := ParseFrame(AppendFrame(nil, want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got.Type != want.Type || got.Origin != want.Origin || got.Seq != want.Seq ||
			got.Replica != want.Replica || got.Round != want.Round || got.MaxSeq != want.MaxSeq ||
			!bytes.Equal(got.Records, want.Records) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestFrameUnknownTagSkipped: a newer peer's extra field must not break an
// older parser — the self-describing property the format exists for.
func TestFrameUnknownTagSkipped(t *testing.T) {
	buf := AppendFrame(nil, Frame{Type: FrameAck, Origin: "o", Seq: 5, Replica: "r"})
	buf = binary.AppendUvarint(buf, 99) // unknown tag
	buf = binary.AppendUvarint(buf, 3)
	buf = append(buf, "xyz"...)
	buf = appendUintField(buf, tagMaxSeq, 4) // known field after the unknown one
	f, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 5 || f.MaxSeq != 4 || f.Origin != "o" || f.Replica != "r" {
		t.Fatalf("parse after unknown tag: %+v", f)
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{'Q'},
		{'Q', frameVersion},
		{'X', frameVersion, FrameBatch},     // wrong magic
		{'Q', 99, FrameBatch},               // wrong version
		{'Q', frameVersion, 0},              // bad type
		{'Q', frameVersion, 200},            // unknown type
		{'Q', frameVersion, FrameAck, 0x80}, // truncated tag varint
		{'Q', frameVersion, FrameAck, 1, 10, 'x'}, // length past end
		append([]byte{'Q', frameVersion, FrameAck}, // oversized token
			append([]byte{tagOrigin, 255}, make([]byte, 255)...)...),
	}
	// Token over maxTokenLen.
	big := AppendFrame(nil, Frame{Type: FrameAck})
	big = appendField(big, tagOrigin, make([]byte, maxTokenLen+1))
	cases = append(cases, big)
	for i, c := range cases {
		if _, err := ParseFrame(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		} else if !errors.Is(err, ErrBadFrame) {
			t.Errorf("case %d: err = %v, want ErrBadFrame", i, err)
		}
	}
}
