package qledger

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"infobus/internal/ledger"
	"infobus/internal/telemetry"
)

// Store holds this host's replica copies of other publishers' pending
// sets: one ordinary write-ahead ledger per origin, under a directory.
// Each ledger file is named by the hex of the origin token, so the replica
// set on disk is self-describing — an operator (or a recovery tool) can
// open any .qlog with the stock ledger code and read whose data it is from
// the name alone.
type Store struct {
	dir     string
	syncLog bool
	metrics *telemetry.Registry

	mu      sync.Mutex
	origins map[string]*originLog
	closed  bool
}

// originLog is the replica state for one publisher: its ledger plus the
// chunk-sequence bookkeeping that supports idempotent application and
// contiguity acks.
type originLog struct {
	led *ledger.Ledger
	// contiguous is the highest S with chunks 1..S all applied; ahead holds
	// the applied sequence numbers above it (out-of-order arrivals).
	contiguous uint64
	ahead      map[uint64]struct{}
	maxSeq     uint64
}

// OpenStore opens (creating if needed) the replica store rooted at dir.
// syncLog selects replica-side durability: true fsyncs each applied batch
// (the "batch" policy — quorum means machine-crash durable), false writes
// without fsync ("lazy" — process-crash durable only). The per-origin
// ledgers share metrics (so "ledger.*" counters on a replica host report
// its replica work); nil keeps them private.
func OpenStore(dir string, syncLog bool, metrics *telemetry.Registry) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("qledger: creating store dir: %w", err)
	}
	s := &Store{dir: dir, syncLog: syncLog, metrics: metrics, origins: make(map[string]*originLog)}
	// Adopt replica logs left by a previous run: pending entries in them
	// are exactly what a recovery coordinator must be able to read.
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("qledger: scanning store dir: %w", err)
	}
	seen := make(map[string]bool)
	for _, de := range names {
		name := de.Name()
		// Segment files look like <hex>.qlog.00000001.seg.
		i := len(name)
		for j := 0; j+5 <= len(name); j++ {
			if name[j:j+5] == ".qlog" {
				i = j
				break
			}
		}
		if i == len(name) {
			continue
		}
		raw, err := hex.DecodeString(name[:i])
		if err != nil || seen[string(raw)] {
			continue
		}
		seen[string(raw)] = true
		if _, err := s.open(string(raw)); err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) logPath(origin string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(origin))+".qlog")
}

// open returns the origin's log, opening or creating its ledger. Caller
// need not hold s.mu.
func (s *Store) open(origin string) (*originLog, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ledger.ErrClosed
	}
	if ol, ok := s.origins[origin]; ok {
		return ol, nil
	}
	led, err := ledger.Open(s.logPath(origin), ledger.Options{Sync: s.syncLog, Metrics: s.metrics})
	if err != nil {
		return nil, fmt.Errorf("qledger: opening replica log for %q: %w", origin, err)
	}
	ol := &originLog{led: led, ahead: make(map[uint64]struct{})}
	s.origins[origin] = ol
	return ol, nil
}

// Apply stores one mirrored batch chunk. It is idempotent: a chunk seq
// already applied is skipped (its content is on disk) but still reported
// applied, so the replica re-acks retransmissions. The returned contiguous
// value is the replica's high-water mark for the origin — every chunk
// 1..contiguous is durably applied.
func (s *Store) Apply(origin string, seq uint64, records []byte) (contiguous uint64, err error) {
	return s.ApplyRun(origin, []uint64{seq}, [][]byte{records})
}

// ApplyRun stores a run of mirrored chunks for one origin in a single
// ledger append — one group commit, one fsync, however many chunks the
// replica drained from its queue. This is the replica half of the fsync
// amortization: the publisher batches appends across concurrent
// publishers, the replica batches applies across queued frames. Duplicate
// seqs are skipped but still covered by the returned contiguous mark.
//
// The disk write happens outside s.mu (an fsync must not stall unrelated
// origins or readers). The recv loop is the only writer per store, so
// runs for one origin never interleave; a concurrent duplicate would cost
// a wasted write, not correctness — AppendBatch is idempotent per record.
func (s *Store) ApplyRun(origin string, seqs []uint64, runs [][]byte) (contiguous uint64, err error) {
	ol, err := s.open(origin)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	var concat []byte
	fresh := make([]uint64, 0, len(seqs))
	for i, seq := range seqs {
		if seq == 0 || seq <= ol.contiguous || sequenceIn(ol.ahead, seq) {
			continue // duplicate (retransmission): content already on disk
		}
		concat = append(concat, runs[i]...)
		fresh = append(fresh, seq)
	}
	if len(fresh) == 0 {
		defer s.mu.Unlock()
		return ol.contiguous, nil
	}
	s.mu.Unlock()
	if err := ol.led.AppendBatch(concat); err != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return ol.contiguous, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seq := range fresh {
		if seq > ol.maxSeq {
			ol.maxSeq = seq
		}
		ol.ahead[seq] = struct{}{}
	}
	for {
		if _, ok := ol.ahead[ol.contiguous+1]; !ok {
			break
		}
		delete(ol.ahead, ol.contiguous+1)
		ol.contiguous++
	}
	return ol.contiguous, nil
}

func sequenceIn(m map[uint64]struct{}, seq uint64) bool {
	_, ok := m[seq]
	return ok
}

// Release applies recovery ack records for origin and retires the log if
// nothing is left pending: the publisher is gone, its entries are
// delivered, so the on-disk replica can be removed whole.
func (s *Store) Release(origin string, ackRecords []byte) error {
	s.mu.Lock()
	ol, ok := s.origins[origin]
	s.mu.Unlock()
	if !ok {
		return nil // nothing stored for this origin
	}
	if err := ol.led.AppendBatch(ackRecords); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || ol.led.Len() != 0 {
		return nil
	}
	delete(s.origins, origin)
	if err := ol.led.Close(); err != nil {
		return err
	}
	base := s.logPath(origin)
	matches, _ := filepath.Glob(base + ".*.seg")
	for _, m := range matches {
		_ = os.Remove(m)
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return nil
	}
	_ = d.Sync()
	return d.Close()
}

// Origins returns the origins with at least one pending entry, sorted.
func (s *Store) Origins() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for origin, ol := range s.origins {
		if ol.led.Len() > 0 {
			out = append(out, origin)
		}
	}
	sort.Strings(out)
	return out
}

// PendingCount returns the number of pending entries held for origin.
func (s *Store) PendingCount(origin string) int {
	s.mu.Lock()
	ol, ok := s.origins[origin]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	return ol.led.Len()
}

// Contiguous returns the replica's contiguous chunk high-water mark.
func (s *Store) Contiguous(origin string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ol, ok := s.origins[origin]; ok {
		return ol.contiguous
	}
	return 0
}

// PendingRecords encodes origin's pending entries as ledger message
// records for a FrameReadRep, stopping at maxBytes (the coordinator
// re-scans, so a truncated reply only delays the tail, never loses it).
// Entries are emitted in id order.
func (s *Store) PendingRecords(origin string, maxBytes int) []byte {
	s.mu.Lock()
	ol, ok := s.origins[origin]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	entries := ol.led.Pending()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	var out []byte
	for _, e := range entries {
		if len(out) > 0 && len(out)+len(e.Payload)+len(e.Subject)+32 > maxBytes {
			break
		}
		out = ledger.AppendMessageRecord(out, e.ID, e.Subject, e.Payload)
	}
	return out
}

// Close closes every replica ledger.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*originLog, 0, len(s.origins))
	for _, ol := range s.origins {
		logs = append(logs, ol)
	}
	s.mu.Unlock()
	var err error
	for _, ol := range logs {
		if cerr := ol.led.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// stableReplicaToken reads (or mints and persists) the store's replica
// identity. Stability matters for quorum arithmetic: a replica that
// restarts must count as the same group member, not a new one, or a write
// quorum could be double-counted against one surviving disk.
func stableReplicaToken(dir string) (string, error) {
	path := filepath.Join(dir, "identity")
	if b, err := os.ReadFile(path); err == nil && len(b) > 0 && len(b) <= maxTokenLen {
		return string(b), nil
	}
	var raw [8]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return "", err
	}
	tok := "r-" + hex.EncodeToString(raw[:])
	if err := os.WriteFile(path, []byte(tok), 0o644); err != nil {
		return "", err
	}
	f, err := os.Open(dir)
	if err == nil {
		_ = f.Sync()
		_ = f.Close()
	}
	return tok, nil
}
