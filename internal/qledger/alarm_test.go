package qledger

import (
	"path/filepath"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/mop"
	"infobus/internal/telemetry"
)

// TestReplAlarmWatches: partitioning the only replica of a factor-1 group
// makes the outstanding chunk age past ReplLagRaise and the outbox exceed
// QuorumStallRaise, so the health engine raises both
// "_sys.alarm.pub.repl-lag" and "_sys.alarm.pub.quorum-stall"; healing the
// partition lets the ack land, the gate release, and both alarms clear —
// and every edge also lands in the flight-data history ring.
func TestReplAlarmWatches(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	dir := t.TempDir()
	qcfg := fastRepl(1, "")
	qcfg.AckTimeout = 30 * time.Second // the heal, not the timeout, releases the gate
	qcfg.ReplLagRaise = 20 * time.Millisecond
	qcfg.QuorumStallRaise = 1
	pub, _ := newReplHost(t, seg, "pub", core.HostConfig{
		LedgerPath:        filepath.Join(dir, "pub.ledger"),
		ReplicationFactor: 1, // the facade sets this; the history agent keys its qledger series on it
		Telemetry: core.TelemetryConfig{
			Health:             telemetry.HealthConfig{Interval: 2 * time.Millisecond},
			HistoryInterval:    2 * time.Millisecond,
			HistoryDigestTicks: -1,
		},
	}, qcfg)
	rcfg := fastRepl(0, filepath.Join(dir, "r1"))
	rcfg.DisableRecovery = true // a partitioned lone replica must not start recovery
	r1h, _ := newReplHost(t, seg, "r1", core.HostConfig{}, rcfg)

	mon := newPlainHost(t, seg, "mon")
	mbus, err := mon.NewBus("monitor")
	if err != nil {
		t.Fatal(err)
	}
	alarms, err := mbus.Subscribe("_sys.alarm.pub.>")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // interest propagation

	pbus, err := pub.NewBus("producer")
	if err != nil {
		t.Fatal(err)
	}
	// Let the first publish prove the healthy path before the fault.
	if _, err := pbus.PublishGuaranteed("orders.new", "healthy"); err != nil {
		t.Fatalf("publish with replica up: %v", err)
	}

	seg.Network().Partition(simNodeID(t, r1h))
	pubDone := make(chan error, 1)
	go func() {
		_, err := pbus.PublishGuaranteed("orders.new", "stalled")
		pubDone <- err
	}()

	// edge collects raise/clear edges per alarm kind from the monitor.
	edges := map[string]bool{} // "repl-lag/raise" etc.
	await := func(want ...string) {
		t.Helper()
		deadline := time.After(15 * time.Second)
		for {
			missing := false
			for _, w := range want {
				if !edges[w] {
					missing = true
				}
			}
			if !missing {
				return
			}
			select {
			case ev := <-alarms.C:
				obj, ok := ev.Value.(*mop.Object)
				if !ok || obj.Type().Name() != "SysAlarm" {
					t.Fatalf("alarm value = %v", ev.Value)
				}
				kind, _ := obj.MustGet("kind").(string)
				if raised, _ := obj.MustGet("raised").(bool); raised {
					edges[kind+"/raise"] = true
				} else {
					edges[kind+"/clear"] = true
				}
			case <-deadline:
				t.Fatalf("waiting for %v, have %v (active: %+v)",
					want, edges, pub.ActiveAlarms())
			}
		}
	}

	await("repl-lag/raise", "quorum-stall/raise")

	// Heal: the retry loop re-sends the chunk, the ack releases the gate,
	// and both watches fall back under their clear thresholds.
	seg.Network().Heal()
	if err := <-pubDone; err != nil {
		t.Fatalf("publish after heal: %v", err)
	}
	await("repl-lag/clear", "quorum-stall/clear")

	// Satellite: the same edges were fed to the history ring, so a
	// "_sys.history" window replays the incident.
	hist := pub.History()
	if hist == nil {
		t.Fatal("history tier not running")
	}
	snap := hist.Snapshot(0)
	got := map[string]bool{}
	for _, e := range snap.Alarms {
		if e.Raised {
			got[e.Kind+"/raise"] = true
		} else {
			got[e.Kind+"/clear"] = true
		}
	}
	for _, w := range []string{"repl-lag/raise", "repl-lag/clear",
		"quorum-stall/raise", "quorum-stall/clear"} {
		if !got[w] {
			t.Errorf("history ring missing alarm edge %s (have %v)", w, got)
		}
	}
	if snap.AlarmTotal < 4 {
		t.Errorf("history alarm_total = %d, want >= 4", snap.AlarmTotal)
	}
	// The replicated series are being sampled into the same window.
	found := false
	for _, s := range snap.Series {
		if s.Name == "qledger.repl_lag" && s.Kind == telemetry.SeriesLevel {
			found = true
		}
	}
	if !found {
		t.Errorf("history window lacks the qledger.repl_lag series")
	}
}
