package qledger

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/rmi"
	"infobus/internal/transport"
)

func fastReliable() reliable.Config {
	return reliable.Config{
		NakInterval:        2 * time.Millisecond,
		GapTimeout:         300 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}
}

func fastSeg() *transport.SimSegment {
	cfg := netsim.DefaultConfig()
	cfg.Speedup = 2000
	return transport.NewSimSegment(cfg)
}

// fastRepl returns ms-scale replication timers matched to the netsim test
// convention (wall-clock timers against a sped-up simulated network).
func fastRepl(factor int, dir string) Config {
	return Config{
		Factor:        factor,
		AckTimeout:    2 * time.Second,
		FsyncPolicy:   "lazy",
		Dir:           dir,
		BeatInterval:  5 * time.Millisecond,
		CrashTimeout:  40 * time.Millisecond,
		ReadTimeout:   150 * time.Millisecond,
		RetryInterval: 5 * time.Millisecond,
		Election:      rmi.ElectionOptions{BeaconInterval: 5 * time.Millisecond},
	}
}

// newReplHost builds a host with the replication tier attached — the same
// wiring infobus.NewHost performs, done by hand because this internal
// package cannot import the facade.
func newReplHost(t *testing.T, seg transport.Segment, name string, hcfg core.HostConfig, qcfg Config) (*core.Host, *Agent) {
	t.Helper()
	hcfg.Reliable = fastReliable()
	if hcfg.RetryInterval == 0 {
		hcfg.RetryInterval = 10 * time.Millisecond
	}
	h, err := core.NewHost(seg, name, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Attach(h, qcfg)
	if err != nil {
		_ = h.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h, a
}

func newPlainHost(t *testing.T, seg transport.Segment, name string) *core.Host {
	t.Helper()
	h, err := core.NewHost(seg, name, core.HostConfig{Reliable: fastReliable()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func waitUntil(t *testing.T, what string, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.After(d)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func simNodeID(t *testing.T, h *core.Host) netsim.NodeID {
	t.Helper()
	var id int
	if _, err := fmt.Sscanf(h.Addr(), "sim:%d", &id); err != nil {
		t.Fatalf("host addr %q: %v", h.Addr(), err)
	}
	return netsim.NodeID(id)
}

// TestQuorumAckAndTrim: the normal-operation path. Publishes reach quorum
// (the gate releases), the replicas hold the pending entries, and once
// consumers acknowledge, the publisher's mirrored ack records trim the
// replica logs back to empty — replicas track the pending set, not the
// full history.
func TestQuorumAckAndTrim(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	dir := t.TempDir()
	pub, pa := newReplHost(t, seg, "pub",
		core.HostConfig{LedgerPath: filepath.Join(dir, "pub.ledger")},
		fastRepl(2, ""))
	_, r1 := newReplHost(t, seg, "r1", core.HostConfig{}, fastRepl(0, filepath.Join(dir, "r1")))
	_, r2 := newReplHost(t, seg, "r2", core.HostConfig{}, fastRepl(0, filepath.Join(dir, "r2")))

	cons := newPlainHost(t, seg, "cons")
	cbus, err := cons.NewBus("consumer")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cbus.Subscribe("orders.>")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // interest propagation

	pbus, err := pub.NewBus("producer")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := pbus.PublishGuaranteed("orders.new", fmt.Sprintf("o-%d", i)); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case <-sub.C:
		case <-time.After(5 * time.Second):
			t.Fatalf("consumer got %d of 5", i)
		}
	}
	// Consumer acks drain the publisher ledger; the mirrored ack records
	// then drain the replicas.
	waitUntil(t, "publisher ledger drain", 5*time.Second, func() bool {
		return len(pub.PendingGuaranteed()) == 0
	})
	origin := pa.Origin()
	waitUntil(t, "replica trim", 5*time.Second, func() bool {
		return r1.Store().PendingCount(origin) == 0 && r2.Store().PendingCount(origin) == 0
	})
	if m := pub.Metrics().Gauge("qledger.repl_lag").Load(); m != 0 {
		t.Errorf("repl_lag = %d after full quorum", m)
	}
	if m := pub.Metrics().Gauge("qledger.quorum_lost").Load(); m != 0 {
		t.Errorf("quorum_lost = %d", m)
	}
}

// TestQuorumLiveness is the check.sh liveness gate: with a replication
// group of publisher + 3 replicas, publishing makes progress with one
// replica down (majority still reachable) and times out with two down.
func TestQuorumLiveness(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	dir := t.TempDir()
	qcfg := fastRepl(3, "")
	qcfg.AckTimeout = 150 * time.Millisecond // fail fast when quorum is gone
	pub, _ := newReplHost(t, seg, "pub",
		core.HostConfig{LedgerPath: filepath.Join(dir, "pub.ledger")}, qcfg)
	rcfg := func(name string) Config {
		c := fastRepl(0, filepath.Join(dir, name))
		c.DisableRecovery = true // liveness test: no coordinator interference
		return c
	}
	r1h, _ := newReplHost(t, seg, "r1", core.HostConfig{}, rcfg("r1"))
	r2h, _ := newReplHost(t, seg, "r2", core.HostConfig{}, rcfg("r2"))
	newReplHost(t, seg, "r3", core.HostConfig{}, rcfg("r3"))

	pbus, err := pub.NewBus("producer")
	if err != nil {
		t.Fatal(err)
	}
	// Full group: progress.
	if _, err := pbus.PublishGuaranteed("q.live", "all-up"); err != nil {
		t.Fatalf("publish with full group: %v", err)
	}
	// One of three replicas down: majority (publisher + 2 of 3) still
	// holds, publishing progresses.
	_ = r1h.Close()
	if _, err := pbus.PublishGuaranteed("q.live", "one-down"); err != nil {
		t.Fatalf("publish with 1 of 3 replicas down: %v", err)
	}
	// Majority of replicas down: the quorum gate must block and report.
	_ = r2h.Close()
	if _, err := pbus.PublishGuaranteed("q.live", "two-down"); !errors.Is(err, ErrQuorumTimeout) {
		t.Fatalf("publish with majority down: err = %v, want ErrQuorumTimeout", err)
	}
	if pub.Metrics().Gauge("qledger.quorum_lost").Load() != 1 {
		t.Error("quorum_lost gauge not raised")
	}
}

// TestCrashRecoveryExactlyOnce is the acceptance scenario: a publisher
// with ReplicationFactor 2 crashes with 10 majority-acked publications a
// partitioned consumer never saw. After the partition heals, the elected
// recovery coordinator majority-reads the replicas and replays under the
// dead publisher's identity: the consumer ends with exactly one copy of
// all 20 messages — none lost, none duplicated.
func TestCrashRecoveryExactlyOnce(t *testing.T) {
	seg := fastSeg()
	defer seg.Close()
	dir := t.TempDir()
	qcfg := fastRepl(2, "")
	pub, pa := newReplHost(t, seg, "pub",
		core.HostConfig{LedgerPath: filepath.Join(dir, "pub.ledger")}, qcfg)
	_, r1 := newReplHost(t, seg, "r1", core.HostConfig{}, fastRepl(0, filepath.Join(dir, "r1")))
	_, r2 := newReplHost(t, seg, "r2", core.HostConfig{}, fastRepl(0, filepath.Join(dir, "r2")))
	origin := pa.Origin()

	cons := newPlainHost(t, seg, "cons")
	cbus, err := cons.NewBus("consumer")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := cbus.Subscribe("orders.>")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range sub.C {
			if s, ok := ev.Value.(string); ok {
				got[s]++
			}
		}
	}()
	time.Sleep(30 * time.Millisecond) // interest propagation

	pbus, err := pub.NewBus("producer")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := pbus.PublishGuaranteed("orders.new", fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatalf("phase-1 publish %d: %v", i, err)
		}
	}
	waitUntil(t, "phase-1 delivery and acks", 5*time.Second, func() bool {
		return len(pub.PendingGuaranteed()) == 0
	})

	// Partition the consumer, then publish 10 more: quorum needs only the
	// replicas, so the gate still releases — these are majority-acked
	// publications no consumer has seen.
	seg.Network().Partition(simNodeID(t, cons))
	for i := 10; i < 20; i++ {
		if _, err := pbus.PublishGuaranteed("orders.new", fmt.Sprintf("m-%d", i)); err != nil {
			t.Fatalf("phase-2 publish %d: %v", i, err)
		}
	}
	waitUntil(t, "replicas holding phase-2 entries", 5*time.Second, func() bool {
		return r1.Store().PendingCount(origin) == 10 && r2.Store().PendingCount(origin) == 10
	})

	// The publisher dies; the partition heals. The coordinator elected
	// among the replicas must notice the silent origin, majority-read, and
	// replay — preserving (origin, id) so dedup absorbs any overlap with
	// the original transmissions.
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	seg.Network().Heal()

	waitUntil(t, "recovery replay to the consumer", 20*time.Second, func() bool {
		return r1.Store().PendingCount(origin) == 0 && r2.Store().PendingCount(origin) == 0
	})
	// Let any straggling duplicate arrive before asserting exactly-once.
	time.Sleep(50 * time.Millisecond)
	_ = cbus.Close()
	<-done

	if len(got) != 20 {
		t.Fatalf("consumer saw %d distinct messages, want 20 (%v)", len(got), got)
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("m-%d", i)
		if got[k] != 1 {
			t.Errorf("message %s delivered %d times, want exactly once", k, got[k])
		}
	}
	if r1.Store().PendingCount(origin) != 0 || r2.Store().PendingCount(origin) != 0 {
		t.Error("replica logs not released after recovery")
	}
}

// TestReplicaRestartStableIdentity: a replica that restarts keeps its
// replica token (and its on-disk pending set), so quorum arithmetic never
// counts one disk twice.
func TestReplicaRestartStableIdentity(t *testing.T) {
	dir := t.TempDir()
	tok1, err := stableReplicaToken(dir)
	if err != nil {
		t.Fatal(err)
	}
	tok2, err := stableReplicaToken(dir)
	if err != nil {
		t.Fatal(err)
	}
	if tok1 != tok2 || tok1 == "" {
		t.Fatalf("replica token not stable: %q then %q", tok1, tok2)
	}

	// The store itself also survives: apply a batch, reopen, and the
	// pending set is still there.
	s, err := OpenStore(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := appendTestMessage(nil, 3, "a.b", "hello")
	if _, err := s.Apply("origin-x", 1, recs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.PendingCount("origin-x"); n != 1 {
		t.Fatalf("reopened store pending = %d, want 1", n)
	}
	origins := s2.Origins()
	if len(origins) != 1 || origins[0] != "origin-x" {
		t.Fatalf("reopened origins = %v", origins)
	}
}
