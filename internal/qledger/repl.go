package qledger

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"infobus/internal/core"
	"infobus/internal/daemon"
	"infobus/internal/ledger"
	"infobus/internal/rmi"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
)

// Replication subjects. They live in the reserved "_sys" space: only the
// bus machinery publishes there, so replicas can trust the frames.
var (
	subjBatch   = subject.MustParse("_sys.repl.batch")
	subjAck     = subject.MustParse("_sys.repl.ack")
	subjBeat    = subject.MustParse("_sys.repl.beat")
	subjRead    = subject.MustParse("_sys.repl.read")
	subjReadRep = subject.MustParse("_sys.repl.readrep")
	subjRelease = subject.MustParse("_sys.repl.release")

	replPattern = subject.MustParsePattern("_sys.repl.>")
)

// Agent errors.
var (
	// ErrQuorumTimeout: a guaranteed publication did not reach a majority
	// of the replication group within Config.AckTimeout. The entry is
	// still durable locally, disseminated, and covered by the retrier and
	// crash recovery — only the quorum guarantee is unconfirmed.
	ErrQuorumTimeout = errors.New("qledger: quorum acknowledgement timeout")
	// ErrClosed: the agent (or its host) is shutting down.
	ErrClosed = errors.New("qledger: closed")
)

// Config tunes a replication agent. The zero value is not valid — use
// core.HostConfig's replication fields through infobus.NewHost, or fill
// Factor/Dir explicitly in tests.
type Config struct {
	// Factor is the number of peer replicas each committed batch is
	// mirrored to; the replication group is this host plus Factor
	// replicas, and publishes are acknowledged at majority durability.
	// 0 disables the publisher role.
	Factor int
	// AckTimeout bounds the quorum wait in PublishGuaranteed. Default 5s.
	AckTimeout time.Duration
	// FsyncPolicy selects replica durability: "batch" (default, fsync per
	// applied batch) or "lazy" (no fsync).
	FsyncPolicy string
	// Dir enables the replica role: mirrored batches from other
	// publishers are stored in per-origin ledgers under it.
	Dir string
	// BeatInterval is the publisher's liveness beacon period. Default
	// 250ms.
	BeatInterval time.Duration
	// CrashTimeout is how long a replica-side coordinator waits without
	// hearing a publisher before fostering its pending entries. Default
	// 4x BeatInterval.
	CrashTimeout time.Duration
	// ReadTimeout bounds one majority-read round during recovery. Default
	// 500ms.
	ReadTimeout time.Duration
	// RetryInterval paces chunk retransmission and recovery replay.
	// Default 100ms.
	RetryInterval time.Duration
	// GatherDelay is the replica-side group-commit window: on receiving a
	// mirrored chunk the replica waits this long for trailing chunks so a
	// single fsync (and a single ack round) covers the whole run. Without
	// it a steady trickle of staggered publishers settles into one fsync
	// per chunk — each ack releases one publisher, whose next commit
	// arrives alone, so batches never re-form anywhere in the pipeline.
	// Costs its value in quorum latency when traffic is sparse. 0
	// disables (the default).
	GatherDelay time.Duration
	// ReplLagRaise is the replica-ack latency watermark: the "repl-lag"
	// alarm raises when the oldest outstanding (not yet at quorum) chunk
	// is older than this, and clears with the engine's hysteresis once the
	// age halves. Default AckTimeout / 2; negative disables the watch.
	ReplLagRaise time.Duration
	// QuorumStallRaise is the quorum-pending backlog watermark: the
	// "quorum-stall" alarm raises when this many chunks sit in the outbox
	// awaiting replica acks. Default 64; negative disables the watch.
	QuorumStallRaise int64
	// Election tunes the recovery-coordinator election.
	Election rmi.ElectionOptions
	// DisableRecovery keeps this replica out of the coordinator election
	// (it still stores and acks batches).
	DisableRecovery bool
}

func (c Config) withDefaults() Config {
	if c.AckTimeout <= 0 {
		c.AckTimeout = 5 * time.Second
	}
	if c.BeatInterval <= 0 {
		c.BeatInterval = 250 * time.Millisecond
	}
	if c.CrashTimeout <= 0 {
		c.CrashTimeout = 4 * c.BeatInterval
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 500 * time.Millisecond
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 100 * time.Millisecond
	}
	if c.ReplLagRaise == 0 {
		c.ReplLagRaise = c.AckTimeout / 2
	}
	if c.QuorumStallRaise == 0 {
		c.QuorumStallRaise = 64
	}
	return c
}

// maxChunk bounds one mirrored frame's record run; a larger commit batch
// is split at record boundaries into several chunks.
const maxChunk = 256 << 10

// maxReadRep bounds one recovery read reply. A replica with more pending
// data answers with a prefix; the coordinator's re-scan covers the rest.
const maxReadRep = 1 << 20

// chunk is one mirrored batch awaiting quorum.
type chunk struct {
	frame []byte   // encoded FrameBatch, kept for retransmission
	ids   []uint64 // message ids the chunk carries
	acks  map[string]struct{}
	done  chan struct{} // closed at quorum
	sent  time.Time     // last (re)transmission, for retry pacing
	// created is the chunk's build time: the repl-lag watch reports the
	// age of the oldest outstanding chunk, and quorumAt - created is the
	// quorum-wait observation.
	created time.Time
	// quorumAt (unix ns) is stamped under a.mu when the write quorum is
	// reached, before done closes, so a Gate waiter reads it race-free.
	// It becomes the trace timeline's HopQuorumAck stamp.
	quorumAt int64
}

// Agent is one host's replication tier: the publisher side mirrors ledger
// commits and gates PublishGuaranteed on quorum acks; the replica side
// stores peers' batches and takes part in the recovery-coordinator
// election. Attach wires it; the host's Close tears it down.
type Agent struct {
	h      *core.Host
	d      *daemon.Daemon
	cfg    Config
	client *daemon.Client
	store  *Store // nil without Config.Dir

	origin  string // this host's publisher identity (daemon token)
	replica string // stable replica identity (store token)
	need    int    // replica acks for a write quorum
	readQ   int    // distinct replicas for a read quorum

	lag  *telemetry.Gauge // chunks mirrored but not yet at quorum
	lost *telemetry.Gauge // 1 while the last quorum wait timed out
	ctr  counters
	rec  *telemetry.Recorder

	mu         sync.Mutex
	nextSeq    uint64
	outbox     map[uint64]*chunk
	idSeq      map[uint64]uint64 // ledger id -> chunk seq, until quorum
	recentQ    map[uint64]int64  // ledger id -> quorum stamp, for gates arriving after the ack
	ackBuf     []byte            // deferred ack records, piggybacked on the next chunk
	heard      map[string]time.Time
	recovering map[string]bool
	readReps   map[uint64]chan Frame
	round      uint64
	closed     bool

	done     chan struct{}
	wg       sync.WaitGroup
	election *rmi.Election
	ebus     *core.Bus

	scanMu   sync.Mutex
	scanStop chan struct{}
}

type counters struct {
	batchesSent, acksRecv     *telemetry.Counter
	batchesStored, acksSent   *telemetry.Counter
	recoveries, replayedMsgs  *telemetry.Counter
	quorumTimeouts, retransms *telemetry.Counter
	quorumWait                *telemetry.Histogram // chunk build -> write quorum
}

// Attach starts the replication tier on a host. With Factor > 0 the host
// must have a ledger (the publisher role hooks its commit stream); with
// Dir set the host stores peers' batches. The agent registers itself as a
// host close hook, so a plain Host.Close tears everything down in order.
func Attach(h *core.Host, cfg Config) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.Factor < 0 {
		return nil, fmt.Errorf("qledger: negative replication factor %d", cfg.Factor)
	}
	if cfg.Factor == 0 && cfg.Dir == "" {
		return nil, errors.New("qledger: nothing to do (Factor 0 and no replica dir)")
	}
	switch cfg.FsyncPolicy {
	case "", "batch", "lazy":
	default:
		return nil, fmt.Errorf("qledger: unknown fsync policy %q", cfg.FsyncPolicy)
	}
	led := h.Ledger()
	if cfg.Factor > 0 && led == nil {
		return nil, errors.New("qledger: replication requires a ledger (set LedgerPath)")
	}
	a := &Agent{
		h:          h,
		d:          h.Daemon(),
		cfg:        cfg,
		origin:     h.Daemon().Identity(),
		need:       (cfg.Factor + 1) / 2,
		readQ:      cfg.Factor + 1 - (cfg.Factor+1)/2,
		outbox:     make(map[uint64]*chunk),
		idSeq:      make(map[uint64]uint64),
		recentQ:    make(map[uint64]int64),
		heard:      make(map[string]time.Time),
		recovering: make(map[string]bool),
		readReps:   make(map[uint64]chan Frame),
		done:       make(chan struct{}),
		rec:        h.Recorder(),
	}
	m := h.Metrics()
	a.lag = m.Gauge("qledger.repl_lag")
	a.lost = m.Gauge("qledger.quorum_lost")
	a.ctr = counters{
		batchesSent:    m.Counter("qledger.batches_sent"),
		acksRecv:       m.Counter("qledger.acks_recv"),
		batchesStored:  m.Counter("qledger.batches_stored"),
		acksSent:       m.Counter("qledger.acks_sent"),
		recoveries:     m.Counter("qledger.recoveries"),
		replayedMsgs:   m.Counter("qledger.replayed_msgs"),
		quorumTimeouts: m.Counter("qledger.quorum_timeouts"),
		retransms:      m.Counter("qledger.retransmits"),
		quorumWait:     m.Histogram("qledger.quorum_wait_ns"),
	}
	if cfg.Dir != "" {
		store, err := OpenStore(cfg.Dir, cfg.FsyncPolicy != "lazy", m)
		if err != nil {
			return nil, err
		}
		tok, err := stableReplicaToken(cfg.Dir)
		if err != nil {
			_ = store.Close()
			return nil, err
		}
		a.store, a.replica = store, tok
	}
	client, err := a.d.NewClient("_qledger")
	if err != nil {
		_ = a.closeStore()
		return nil, err
	}
	a.client = client
	if err := client.Subscribe(replPattern); err != nil {
		_ = client.Close()
		_ = a.closeStore()
		return nil, err
	}
	if a.store != nil && !cfg.DisableRecovery {
		ebus, err := h.NewBus("_qledger")
		if err != nil {
			_ = client.Close()
			_ = a.closeStore()
			return nil, err
		}
		election, err := rmi.NewElection(ebus, a, "_qrecover", cfg.Election)
		if err != nil {
			_ = ebus.Close()
			_ = client.Close()
			_ = a.closeStore()
			return nil, err
		}
		a.ebus, a.election = ebus, election
	}
	if cfg.Factor > 0 {
		led.SetOnCommit(a.onCommit)
		h.SetGuaranteeGate(a.Gate)
		if eng := h.HealthEngine(); eng != nil {
			eng.Watch(telemetry.WatchConfig{Kind: "quorum-lost", Raise: 1},
				a.lost.Load)
			if cfg.ReplLagRaise > 0 {
				// Replica-ack latency watermark: the engine's default clear
				// threshold (Raise/2) gives the edge hysteresis.
				eng.Watch(telemetry.WatchConfig{Kind: "repl-lag",
					Raise: cfg.ReplLagRaise.Milliseconds()}, a.oldestOutstandingMs)
			}
			if cfg.QuorumStallRaise > 0 {
				eng.Watch(telemetry.WatchConfig{Kind: "quorum-stall",
					Raise: cfg.QuorumStallRaise}, a.lag.Load)
			}
		}
	}
	a.wg.Add(2)
	go a.recvLoop()
	go a.tickLoop()
	h.AddCloseHook(a.Close)
	return a, nil
}

func (a *Agent) closeStore() error {
	if a.store == nil {
		return nil
	}
	return a.store.Close()
}

// Store exposes the replica store (nil on a publisher-only agent).
func (a *Agent) Store() *Store { return a.store }

// Origin returns this host's publisher identity token.
func (a *Agent) Origin() string { return a.origin }

// Leading reports whether this agent currently is the recovery
// coordinator.
func (a *Agent) Leading() bool {
	return a.election != nil && a.election.Leading()
}

// Close detaches the tier: retire from the election, stop the loops,
// close the replica store. Idempotent; also runs as the host close hook.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	// Unblock every pending quorum gate.
	outbox := a.outbox
	a.outbox = make(map[uint64]*chunk)
	a.idSeq = make(map[uint64]uint64)
	a.mu.Unlock()
	for _, c := range outbox {
		close(c.done)
	}
	if a.cfg.Factor > 0 {
		if led := a.h.Ledger(); led != nil {
			led.SetOnCommit(nil)
		}
		a.h.SetGuaranteeGate(nil)
	}
	if a.election != nil {
		a.election.Close()
	}
	close(a.done)
	if a.ebus != nil {
		_ = a.ebus.Close()
	}
	_ = a.client.Close()
	a.wg.Wait()
	_ = a.closeStore()
}

// ---------------------------------------------------------------------------
// Publisher side

// onCommit runs on the ledger committer for every durable batch. Message
// records mirror immediately — a publisher is gated on them. Ack records
// are deferred: they only drive replica-side trimming, and a frame per
// consumer acknowledgement would double the chunk (and replica fsync)
// rate, so they ride along in front of the next data chunk, or go out on
// the beat tick when the publisher is idle. The hook must not retain cb's
// slices (the ledger recycles them), so everything is copied here.
func (a *Agent) onCommit(cb ledger.CommitBatch) {
	var msgs, acks []byte
	for off := 0; off < len(cb.Records); {
		rec, n, err := ledger.NextRecord(cb.Records[off:])
		if err != nil {
			// The committer just wrote these bytes; a parse failure here is
			// a programming error, not runtime input.
			panic(fmt.Sprintf("qledger: commit batch does not re-parse: %v", err))
		}
		if rec.Ack {
			acks = append(acks, cb.Records[off:off+n]...)
		} else {
			msgs = append(msgs, cb.Records[off:off+n]...)
		}
		off += n
	}
	var frames [][]byte
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.ackBuf = append(a.ackBuf, acks...)
	if len(msgs) > 0 || len(a.ackBuf) >= maxChunk {
		// Deferred acks go in front: an ack's message record always sits in
		// an earlier chunk (the consumer acked a mirrored publication), so
		// prepending cannot reorder an ack before its message.
		records := append(a.ackBuf, msgs...)
		a.ackBuf = nil
		frames = a.buildChunksLocked(records)
	}
	a.lag.Set(int64(len(a.outbox)))
	a.mu.Unlock()
	for _, f := range frames {
		_ = a.d.Publish(subjBatch, f)
		a.ctr.batchesSent.Inc()
	}
	if len(frames) > 0 {
		_ = a.d.Flush()
	}
}

// buildChunksLocked cuts a validated record run into outbox chunks at
// record boundaries (maxChunk each) and returns the frames to broadcast.
// Caller holds a.mu.
func (a *Agent) buildChunksLocked(records []byte) [][]byte {
	var frames [][]byte
	for len(records) > 0 {
		end := 0
		var ids []uint64
		for end < len(records) {
			rec, n, err := ledger.NextRecord(records[end:])
			if err != nil {
				panic(fmt.Sprintf("qledger: chunk run does not re-parse: %v", err))
			}
			if end > 0 && end+n > maxChunk {
				break
			}
			if !rec.Ack {
				ids = append(ids, rec.ID)
			}
			end += n
		}
		a.nextSeq++
		now := time.Now()
		c := &chunk{
			frame: AppendFrame(nil, Frame{
				Type: FrameBatch, Origin: a.origin, Seq: a.nextSeq,
				Records: records[:end],
			}),
			ids:     ids,
			acks:    make(map[string]struct{}),
			done:    make(chan struct{}),
			sent:    now,
			created: now,
		}
		a.outbox[a.nextSeq] = c
		for _, id := range ids {
			a.idSeq[id] = a.nextSeq
		}
		frames = append(frames, c.frame)
		records = records[end:]
	}
	return frames
}

// Gate blocks a PublishGuaranteed caller until the chunk carrying its
// ledger id reaches quorum, the timeout passes, or the agent closes. It
// is installed as the host's guarantee gate. On success it reports when
// the write quorum was reached (unix ns; 0 when the stamp is unknown —
// e.g. the id was never replicated), which the bus layer turns into the
// trace timeline's HopQuorumAck hop.
func (a *Agent) Gate(id uint64) (int64, error) {
	a.mu.Lock()
	seq, ok := a.idSeq[id]
	if !ok {
		// Already at quorum (acks can land between the commit hook and
		// the publisher waking up — handleAck parked the stamp), or not
		// replicated at all.
		at := a.recentQ[id]
		delete(a.recentQ, id)
		a.mu.Unlock()
		return at, nil
	}
	c := a.outbox[seq]
	a.mu.Unlock()
	if c == nil {
		return 0, nil
	}
	timer := time.NewTimer(a.cfg.AckTimeout)
	defer timer.Stop()
	select {
	case <-c.done:
		a.mu.Lock()
		closed := a.closed
		delete(a.recentQ, id) // collected via the chunk below
		a.mu.Unlock()
		if closed {
			return 0, ErrClosed
		}
		return c.quorumAt, nil
	case <-a.done:
		return 0, ErrClosed
	case <-timer.C:
		a.lost.Set(1)
		a.ctr.quorumTimeouts.Inc()
		if a.rec != nil {
			a.rec.Record(telemetry.EventRepl, "quorum-timeout", int64(id), int64(seq))
		}
		a.mu.Lock()
		got := len(c.acks)
		a.mu.Unlock()
		return 0, fmt.Errorf("%w (id %d, %d/%d replica acks)",
			ErrQuorumTimeout, id, got, a.need)
	}
}

// oldestOutstandingMs reports the age, in milliseconds, of the oldest
// chunk still awaiting its write quorum (0 with an empty outbox). It is
// the "repl-lag" watch's sample: a healthy group keeps it near the
// replica round trip, a stalled or partitioned replica set lets it grow
// toward AckTimeout.
func (a *Agent) oldestOutstandingMs() int64 {
	a.mu.Lock()
	var oldest time.Time
	for _, c := range a.outbox {
		if oldest.IsZero() || c.created.Before(oldest) {
			oldest = c.created
		}
	}
	a.mu.Unlock()
	if oldest.IsZero() {
		return 0
	}
	return time.Since(oldest).Milliseconds()
}

// handleAck credits one replica ack to the publisher's outbox. MaxSeq
// closes every straggling chunk at or below the replica's contiguous
// high-water mark — content the replica provably holds even if the exact
// ack frame for it was lost.
func (a *Agent) handleAck(f Frame) {
	if f.Origin != a.origin || f.Replica == "" {
		return
	}
	a.ctr.acksRecv.Inc()
	var ready []*chunk
	now := time.Now()
	a.mu.Lock()
	for seq, c := range a.outbox {
		if seq != f.Seq && seq > f.MaxSeq {
			continue
		}
		if _, dup := c.acks[f.Replica]; dup {
			continue
		}
		c.acks[f.Replica] = struct{}{}
		if len(c.acks) >= a.need {
			c.quorumAt = now.UnixNano()
			delete(a.outbox, seq)
			if len(a.recentQ) > 4096 {
				// Crude epoch clear: a gate for an evicted id reports an
				// unknown (zero) quorum stamp, nothing worse.
				clear(a.recentQ)
			}
			for _, id := range c.ids {
				delete(a.idSeq, id)
				a.recentQ[id] = c.quorumAt
			}
			ready = append(ready, c)
			a.ctr.quorumWait.Observe(now.Sub(c.created))
		}
	}
	if len(ready) > 0 {
		a.lost.Set(0)
	}
	a.lag.Set(int64(len(a.outbox)))
	a.mu.Unlock()
	for _, c := range ready {
		close(c.done)
	}
}

// tickLoop drives publisher-side time: chunk retransmission every
// RetryInterval and liveness beats every BeatInterval; on the replica
// side, the coordinator's crash scan piggybacks on the beat tick.
func (a *Agent) tickLoop() {
	defer a.wg.Done()
	retry := time.NewTicker(a.cfg.RetryInterval)
	defer retry.Stop()
	beat := time.NewTicker(a.cfg.BeatInterval)
	defer beat.Stop()
	var beatFrame []byte
	if a.cfg.Factor > 0 {
		beatFrame = AppendFrame(nil, Frame{Type: FrameBeat, Origin: a.origin})
	}
	for {
		select {
		case <-a.done:
			return
		case now := <-retry.C:
			// Retransmit only chunks that have gone a full RetryInterval
			// without an ack. Reflooding the whole outbox every tick would
			// congest the medium exactly when the replicas are behind.
			a.mu.Lock()
			frames := make([][]byte, 0, len(a.outbox))
			for _, c := range a.outbox {
				if now.Sub(c.sent) < a.cfg.RetryInterval {
					continue
				}
				c.sent = now
				frames = append(frames, c.frame)
			}
			a.mu.Unlock()
			for _, f := range frames {
				_ = a.d.Publish(subjBatch, f)
				a.ctr.retransms.Inc()
			}
			if len(frames) > 0 {
				_ = a.d.Flush()
			}
		case <-beat.C:
			if beatFrame != nil {
				// Idle flush for deferred ack records: with no data chunks
				// to ride on, replica trimming proceeds at beat cadence.
				a.mu.Lock()
				var frames [][]byte
				if len(a.ackBuf) > 0 && !a.closed {
					records := a.ackBuf
					a.ackBuf = nil
					frames = a.buildChunksLocked(records)
				}
				a.mu.Unlock()
				for _, f := range frames {
					_ = a.d.Publish(subjBatch, f)
					a.ctr.batchesSent.Inc()
				}
				_ = a.d.Publish(subjBeat, beatFrame)
				_ = a.d.Flush()
			}
			if a.store != nil && a.Leading() {
				a.scanForCrashed()
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Replica side

// maxDrain caps how many queued batch frames the recv loop folds into one
// replica group commit.
const maxDrain = 256

// recvLoop dispatches replication frames from the daemon client. Batch
// frames are the hot path: when one arrives, every batch frame already
// queued behind it is drained and applied in a single ledger append — the
// replica-side half of the fsync amortization. Draining stops at the
// first non-batch frame so global FIFO order is preserved exactly.
func (a *Agent) recvLoop() {
	defer a.wg.Done()
	for {
		dv, ok := a.client.Next(a.done)
		if !ok {
			return
		}
		f, err := ParseFrame(dv.Payload)
		if err != nil {
			continue // foreign or corrupt frame: drop, never crash
		}
		if f.Type != FrameBatch {
			a.dispatch(f)
			continue
		}
		if a.cfg.GatherDelay > 0 {
			// Replica-side linger: let the chunks behind this one land
			// before the group commit below cuts the batch.
			time.Sleep(a.cfg.GatherDelay)
		}
		batch := []Frame{f}
		var tail []Frame
		for len(batch) < maxDrain {
			dv, ok := a.client.TryNext()
			if !ok {
				break
			}
			g, err := ParseFrame(dv.Payload)
			if err != nil {
				continue
			}
			if g.Type != FrameBatch {
				tail = append(tail, g)
				break
			}
			batch = append(batch, g)
		}
		a.handleBatches(batch)
		for _, g := range tail {
			a.dispatch(g)
		}
	}
}

// dispatch handles one non-batch replication frame.
func (a *Agent) dispatch(f Frame) {
	switch f.Type {
	case FrameAck:
		a.handleAck(f)
	case FrameBeat:
		a.noteHeard(f.Origin)
	case FrameReadReq:
		a.handleReadReq(f)
	case FrameReadRep:
		a.routeReadRep(f)
	case FrameRelease:
		if a.store != nil && f.Origin != "" && len(f.Records) > 0 {
			_ = a.store.Release(f.Origin, f.Records)
		}
	}
}

func (a *Agent) noteHeard(origin string) {
	if origin == "" || origin == a.origin {
		return
	}
	a.mu.Lock()
	a.heard[origin] = time.Now()
	a.mu.Unlock()
}

// handleBatches stores a drained run of mirrored chunks — one ledger
// append (one fsync) per origin — and acks them. In the common in-order
// case one ack frame per origin covers the whole run via the contiguous
// high-water mark; chunks applied above a gap get an exact-seq ack each.
// Duplicates (retransmissions) skip the disk but still ack — the content
// is already durable here.
func (a *Agent) handleBatches(frames []Frame) {
	if a.store == nil {
		return
	}
	type run struct {
		seqs []uint64
		recs [][]byte
	}
	var order []string
	runs := make(map[string]*run)
	for _, f := range frames {
		if f.Origin == "" || f.Origin == a.origin || f.Seq == 0 {
			continue
		}
		a.noteHeard(f.Origin)
		r := runs[f.Origin]
		if r == nil {
			r = &run{}
			runs[f.Origin] = r
			order = append(order, f.Origin)
		}
		r.seqs = append(r.seqs, f.Seq)
		r.recs = append(r.recs, f.Records)
	}
	sent := 0
	for _, origin := range order {
		r := runs[origin]
		contig, err := a.store.ApplyRun(origin, r.seqs, r.recs)
		if err != nil {
			continue // disk trouble: withhold the acks, the publisher retries
		}
		a.ctr.batchesStored.Add(uint64(len(r.seqs)))
		acked := make(map[uint64]bool)
		for _, seq := range r.seqs {
			if seq <= contig || acked[seq] {
				continue // covered by the closing high-water ack below
			}
			acked[seq] = true
			_ = a.d.Publish(subjAck, AppendFrame(nil, Frame{
				Type: FrameAck, Origin: origin, Seq: seq, Replica: a.replica,
				MaxSeq: contig,
			}))
			sent++
		}
		if contig > 0 {
			_ = a.d.Publish(subjAck, AppendFrame(nil, Frame{
				Type: FrameAck, Origin: origin, Seq: contig, Replica: a.replica,
				MaxSeq: contig,
			}))
			sent++
		}
	}
	if sent > 0 {
		_ = a.d.Flush()
		a.ctr.acksSent.Add(uint64(sent))
	}
}

// handleReadReq answers a recovery coordinator's majority read with this
// replica's pending set for the origin. Replicas holding nothing answer
// too: an empty reply still counts toward the read quorum.
func (a *Agent) handleReadReq(f Frame) {
	if a.store == nil || f.Origin == "" || f.Round == 0 {
		return
	}
	rep := AppendFrame(nil, Frame{
		Type: FrameReadRep, Origin: f.Origin, Round: f.Round,
		Replica: a.replica, Records: a.store.PendingRecords(f.Origin, maxReadRep),
		MaxSeq: a.store.Contiguous(f.Origin),
	})
	_ = a.d.Publish(subjReadRep, rep)
	_ = a.d.Flush()
}

// routeReadRep hands a read reply to the recovery waiting on its round.
func (a *Agent) routeReadRep(f Frame) {
	a.mu.Lock()
	ch := a.readReps[f.Round]
	a.mu.Unlock()
	if ch == nil {
		return
	}
	// Records aliases the delivery buffer; the recovery goroutine retains
	// it across the channel, so copy here.
	f.Records = append([]byte(nil), f.Records...)
	select {
	case ch <- f:
	default:
	}
}
