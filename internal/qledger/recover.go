package qledger

import (
	"time"

	"infobus/internal/ledger"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/wire"
)

// Recovery coordination. The replica hosts elect one coordinator through
// the same bus election servers use (internal/rmi, §3.3 of the paper) —
// the Agent is the election's Candidate. The coordinator watches for
// publishers that stopped beating while replicas still hold pending
// entries for them, then runs the majority-read-and-replay protocol: read
// the pending set from a read quorum of replicas (any set that must
// intersect every write quorum), union the entries, and re-publish each
// with PublishGuaranteedOrigin so it travels under the dead publisher's
// (origin, id) identity — consumers that already received the original
// dedup the replay, consumers that never did get it now, and delivery
// stays exactly-once either way.

// Promote makes this agent the recovery coordinator (rmi.Candidate).
func (a *Agent) Promote() error {
	a.scanMu.Lock()
	defer a.scanMu.Unlock()
	a.scanStop = make(chan struct{})
	return nil
}

// Retire steps down from coordinating (rmi.Candidate). In-flight
// recoveries finish their current replay round and stop.
func (a *Agent) Retire() {
	a.scanMu.Lock()
	defer a.scanMu.Unlock()
	if a.scanStop != nil {
		close(a.scanStop)
		a.scanStop = nil
	}
}

// coordinatorDone returns the channel that cancels coordinator work, or
// nil when not leading.
func (a *Agent) coordinatorDone() chan struct{} {
	a.scanMu.Lock()
	defer a.scanMu.Unlock()
	return a.scanStop
}

// scanForCrashed runs on the beat tick while leading: any origin with
// pending replicated entries that has not been heard from for
// CrashTimeout gets a recovery goroutine. First sight of an origin only
// starts its silence clock — a coordinator elected after a crash must
// still wait out the timeout before declaring the publisher dead.
func (a *Agent) scanForCrashed() {
	stop := a.coordinatorDone()
	if stop == nil {
		return
	}
	now := time.Now()
	for _, origin := range a.store.Origins() {
		if origin == a.origin {
			continue
		}
		a.mu.Lock()
		last, known := a.heard[origin]
		if !known {
			a.heard[origin] = now
		}
		busy := a.recovering[origin]
		start := known && !busy && now.Sub(last) >= a.cfg.CrashTimeout
		if start {
			a.recovering[origin] = true
		}
		a.mu.Unlock()
		if start {
			a.ctr.recoveries.Inc()
			if a.rec != nil {
				a.rec.Record(telemetry.EventRepl, "recover:"+origin, int64(a.store.PendingCount(origin)), 0)
			}
			a.wg.Add(1)
			go a.recoverOrigin(origin, stop)
		}
	}
}

// recoverOrigin fosters one dead publisher's pending entries.
func (a *Agent) recoverOrigin(origin string, stop chan struct{}) {
	defer a.wg.Done()
	defer func() {
		a.mu.Lock()
		delete(a.recovering, origin)
		// Restart the silence clock: if entries remain (capped read reply,
		// replay interrupted by retirement), the next scan re-fosters after
		// another CrashTimeout instead of spinning.
		a.heard[origin] = time.Now()
		a.mu.Unlock()
	}()
	entries, ok := a.majorityRead(origin, stop)
	if !ok || len(entries) == 0 {
		return
	}
	a.replay(origin, entries, stop)
}

// majorityRead collects the pending set for origin from a read quorum of
// replicas (this host's own store answers over the same broadcast path as
// everyone else's). Rounds repeat until the quorum is reached or the
// coordinator stops.
func (a *Agent) majorityRead(origin string, stop chan struct{}) (map[uint64]ledger.Rec, bool) {
	entries := make(map[uint64]ledger.Rec)
	for {
		a.mu.Lock()
		a.round++
		round := a.round
		ch := make(chan Frame, a.cfg.Factor+4)
		a.readReps[round] = ch
		a.mu.Unlock()
		req := AppendFrame(nil, Frame{Type: FrameReadReq, Origin: origin, Round: round})
		_ = a.d.Publish(subjRead, req)
		_ = a.d.Flush()

		seen := make(map[string]bool)
		timer := time.NewTimer(a.cfg.ReadTimeout)
	collect:
		for {
			select {
			case f := <-ch:
				if f.Origin != origin || f.Replica == "" || seen[f.Replica] {
					continue
				}
				seen[f.Replica] = true
				for recs := f.Records; len(recs) > 0; {
					rec, n, err := ledger.NextRecord(recs)
					if err != nil {
						break
					}
					recs = recs[n:]
					if rec.Ack {
						delete(entries, rec.ID)
						continue
					}
					if _, dup := entries[rec.ID]; !dup {
						entries[rec.ID] = rec
					}
				}
				if len(seen) >= a.readQ {
					break collect
				}
			case <-timer.C:
				break collect
			case <-stop:
				timer.Stop()
				a.dropRound(round)
				return nil, false
			case <-a.done:
				timer.Stop()
				a.dropRound(round)
				return nil, false
			}
		}
		timer.Stop()
		a.dropRound(round)
		if len(seen) >= a.readQ {
			return entries, true
		}
		select {
		case <-time.After(a.cfg.RetryInterval):
		case <-stop:
			return nil, false
		case <-a.done:
			return nil, false
		}
	}
}

func (a *Agent) dropRound(round uint64) {
	a.mu.Lock()
	delete(a.readReps, round)
	a.mu.Unlock()
}

// replay re-publishes the fostered entries under the dead publisher's
// identity until consumers acknowledge each one, releasing the replicas'
// copies as acks land.
func (a *Agent) replay(origin string, entries map[uint64]ledger.Rec, stop chan struct{}) {
	ackC := make(chan uint64, len(entries)+16)
	a.d.FosterAcks(origin, func(id uint64, from string) {
		select {
		case ackC <- id:
		default:
		}
	})
	defer a.d.DropFosterAcks(origin)

	var ackedRecords []byte
	flushReleases := func() {
		if len(ackedRecords) == 0 {
			return
		}
		rel := AppendFrame(nil, Frame{Type: FrameRelease, Origin: origin, Records: ackedRecords})
		ackedRecords = nil
		// Broadcast: every replica (this host's own store included, via
		// loopback) trims the recovered entries.
		_ = a.d.Publish(subjRelease, rel)
		_ = a.d.Flush()
	}

	for len(entries) > 0 {
		for id, rec := range entries {
			s, err := subject.Parse(rec.Subject)
			if err != nil {
				delete(entries, id) // unroutable: drop rather than loop forever
				continue
			}
			_ = a.d.PublishGuaranteedOrigin(s, rec.Payload, id, origin, wire.IsCompact(rec.Payload))
			a.ctr.replayedMsgs.Inc()
		}
		_ = a.d.Flush()
		timer := time.NewTimer(a.cfg.RetryInterval)
	drain:
		for {
			select {
			case id := <-ackC:
				if _, ok := entries[id]; ok {
					delete(entries, id)
					ackedRecords = ledger.AppendAckRecord(ackedRecords, id)
				}
				if len(entries) == 0 {
					break drain
				}
			case <-timer.C:
				break drain
			case <-stop:
				timer.Stop()
				flushReleases()
				return
			case <-a.done:
				timer.Stop()
				return
			}
		}
		timer.Stop()
		flushReleases()
	}
}
