package qledger

import (
	"bytes"
	"testing"
)

// FuzzReplFrame: the replication codec parses network-facing bytes, so it
// must survive arbitrary input (length caps, token caps, field-count
// bound) and round-trip whatever it accepts.
func FuzzReplFrame(f *testing.F) {
	f.Add(AppendFrame(nil, Frame{Type: FrameBatch, Origin: "sim:1#00aa", Seq: 3, Records: []byte("payload")}))
	f.Add(AppendFrame(nil, Frame{Type: FrameAck, Origin: "o", Seq: 1, Replica: "r-0011", MaxSeq: 1}))
	f.Add(AppendFrame(nil, Frame{Type: FrameReadRep, Origin: "o", Round: 9, Replica: "r", Records: bytes.Repeat([]byte{7}, 100)}))
	f.Add([]byte{'Q', frameVersion, FrameBeat})
	f.Add([]byte("not a frame"))
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := ParseFrame(data) // must never panic
		if err != nil {
			return
		}
		// Accepted frames re-encode and re-parse to the same value
		// (canonical fields only; unknown tags are dropped by design).
		out, err := ParseFrame(AppendFrame(nil, frame))
		if err != nil {
			t.Fatalf("re-parse of accepted frame failed: %v", err)
		}
		if out.Type != frame.Type || out.Origin != frame.Origin || out.Seq != frame.Seq ||
			out.Replica != frame.Replica || out.Round != frame.Round || out.MaxSeq != frame.MaxSeq ||
			!bytes.Equal(out.Records, frame.Records) {
			t.Fatalf("round trip mismatch: %+v vs %+v", frame, out)
		}
	})
}
