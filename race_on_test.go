//go:build race

package infobus

// raceEnabled reports whether the race detector is instrumenting this
// binary; see race_off_test.go for the counterpart.
const raceEnabled = true
