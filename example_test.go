package infobus_test

import (
	"fmt"
	"time"

	"infobus"
)

// The README quick start, runnable: two hosts on a simulated Ethernet, a
// wildcard subscription, a run-time-defined class, anonymous delivery.
func Example() {
	netCfg := infobus.DefaultNetConfig()
	netCfg.Speedup = 2000
	seg := infobus.NewSimSegment(netCfg)
	defer seg.Close()

	deskHost, _ := infobus.NewHost(seg, "trader-desk", infobus.HostConfig{})
	defer deskHost.Close()
	deskBus, _ := deskHost.NewBus("monitor")
	sub, _ := deskBus.Subscribe("news.equity.*")

	feedHost, _ := infobus.NewHost(seg, "feed", infobus.HostConfig{})
	defer feedHost.Close()
	feedBus, _ := feedHost.NewBus("adapter")

	story, _ := infobus.NewClass("Story", nil, []infobus.Attr{
		{Name: "headline", Type: infobus.String},
	}, nil)
	obj, _ := infobus.NewObject(story)
	obj.MustSet("headline", "GM surges on earnings")
	_ = feedBus.Publish("news.equity.gmc", obj)

	select {
	case ev := <-sub.C:
		fmt.Printf("[%s]\n%s\n", ev.Subject, infobus.Print(ev.Value))
	case <-time.After(10 * time.Second):
		fmt.Println("timeout")
	}
	// Output:
	// [news.equity.gmc]
	// Story {
	//   headline: "GM surges on earnings"
	// }
}
