package infobus

import (
	"path/filepath"
	"testing"
	"time"

	"infobus/internal/core"
	"infobus/internal/daemon"
	"infobus/internal/netsim"
	"infobus/internal/reliable"
	"infobus/internal/subject"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
)

// TestPublishDeliverAllocBudget pins the publish→deliver hot path at one
// allocation per operation — the envelope buffer the retransmit window
// keeps — with the health tier ENABLED, so the slow-consumer watermark
// bookkeeping (atomic depth mirror sampled by the alarm engine) provably
// costs the hot path nothing. scripts/check.sh runs this as a gate; if it
// fails, something on the daemon publish or local-delivery path gained an
// allocation.
func TestPublishDeliverAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the budget is pinned by the non-race run in scripts/check.sh")
	}
	netCfg := netsim.DefaultConfig()
	netCfg.Speedup = 2000
	seg := transport.NewSimSegment(netCfg)
	defer seg.Close()
	ep, err := seg.NewEndpoint("allocbudget")
	if err != nil {
		t.Fatal(err)
	}
	hcfg := telemetry.HealthConfig{Interval: time.Hour}.WithDefaults()
	rec := telemetry.NewRecorder(hcfg.RecorderSize)
	engine := telemetry.NewEngine("allocbudget", telemetry.NewRegistry(), rec)
	d := daemon.New(ep, reliable.Config{
		Batching:           true,
		NakInterval:        2 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  10 * time.Millisecond,
		Recorder:           rec,
	}, daemon.Options{
		Health:            engine,
		Recorder:          rec,
		SlowConsumerDepth: hcfg.SlowConsumerDepth,
	})
	defer d.Close()
	c, err := d.NewClient("sub")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(subject.MustParsePattern("fan.bench.data")); err != nil {
		t.Fatal(err)
	}
	subj := subject.MustParse("fan.bench.data")
	payload := make([]byte, 256)
	publishDeliver := func() {
		if err := d.Publish(subj, payload); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.TryNext(); !ok {
			t.Fatal("missing local delivery")
		}
	}
	// Warm up lazily-allocated state (interner entries, trie match cache,
	// batch buffers) before measuring. The run count must be high enough to
	// amortise periodic work (batch flushes, netsim datagram bookkeeping) —
	// BenchmarkFanout converges to 1 alloc/op around 10^5 iterations.
	for i := 0; i < 1000; i++ {
		publishDeliver()
	}
	// Budget: 1 alloc/op (the retransmit-window copy) plus slack for the
	// simulated network's background per-datagram bookkeeping, which
	// AllocsPerRun cannot exclude. AllocsPerRun counts every malloc in the
	// process, so when other packages' test binaries compete for the CPU
	// (go test ./...) a slowed-down run picks up timer/GC noise; contention
	// only ever adds allocations, so the minimum over a few attempts is the
	// true per-op cost.
	best := testing.AllocsPerRun(100000, publishDeliver)
	for attempt := 0; attempt < 4 && best > 1.5; attempt++ {
		if a := testing.AllocsPerRun(100000, publishDeliver); a < best {
			best = a
		}
	}
	if best > 1.5 {
		t.Fatalf("publish→deliver = %.2f allocs/op, budget 1 (+0.5 netsim slack)", best)
	}
}

// TestPublishDeliverHistoryAllocBudget is the flight-data variant of the
// gate above: the SAME 1-alloc/op budget must hold while a history
// sampler concurrently ticks rate, level, and percentile rings over the
// daemon's live instruments. The sampler is single-writer over
// preallocated rings (seqlock slots, no maps, no boxing), so turning the
// tier on must not add a single allocation to the publish→deliver path —
// scripts/check.sh runs this as a gate.
func TestPublishDeliverHistoryAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the budget is pinned by the non-race run in scripts/check.sh")
	}
	netCfg := netsim.DefaultConfig()
	netCfg.Speedup = 2000
	seg := transport.NewSimSegment(netCfg)
	defer seg.Close()
	ep, err := seg.NewEndpoint("histalloc")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	hcfg := telemetry.HealthConfig{Interval: time.Hour}.WithDefaults()
	rec := telemetry.NewRecorder(hcfg.RecorderSize)
	engine := telemetry.NewEngine("histalloc", reg, rec)
	d := daemon.New(ep, reliable.Config{
		Batching:           true,
		NakInterval:        2 * time.Millisecond,
		RetransmitInterval: 3 * time.Millisecond,
		HeartbeatInterval:  10 * time.Millisecond,
		Recorder:           rec,
	}, daemon.Options{
		Metrics:           reg,
		Health:            engine,
		Recorder:          rec,
		SlowConsumerDepth: hcfg.SlowConsumerDepth,
	})
	defer d.Close()
	// The same series mix the host's historyAgent tracks: counter deltas,
	// a computed level, and a histogram's percentile cut, sampled at a
	// busy 2 ms so dozens of ticks land inside the measured run.
	hist := telemetry.NewHistory(telemetry.HistoryConfig{Interval: 2 * time.Millisecond})
	hist.TrackRate("daemon.inbound", reg.Counter("daemon.inbound"))
	hist.TrackRate("daemon.delivered_local", reg.Counter("daemon.delivered_local"))
	hist.TrackLevelFunc("daemon.lane_depth", func() int64 {
		var sum int64
		for _, depth := range d.LaneDepths() {
			sum += depth
		}
		return sum
	})
	hist.TrackHist("daemon.trace_e2e_ns", reg.Histogram("daemon.trace_e2e_ns"))
	hist.Start()
	defer hist.Stop()
	c, err := d.NewClient("sub")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(subject.MustParsePattern("fan.bench.data")); err != nil {
		t.Fatal(err)
	}
	subj := subject.MustParse("fan.bench.data")
	payload := make([]byte, 256)
	publishDeliver := func() {
		if err := d.Publish(subj, payload); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.TryNext(); !ok {
			t.Fatal("missing local delivery")
		}
	}
	for i := 0; i < 1000; i++ {
		publishDeliver()
	}
	best := testing.AllocsPerRun(100000, publishDeliver)
	for attempt := 0; attempt < 4 && best > 1.5; attempt++ {
		if a := testing.AllocsPerRun(100000, publishDeliver); a < best {
			best = a
		}
	}
	if best > 1.5 {
		t.Fatalf("publish→deliver with history = %.2f allocs/op, budget 1 (+0.5 netsim slack)", best)
	}
	if hist.Snapshot(0).Ticks == 0 {
		t.Fatal("sampler never ticked during the measured run")
	}
}

// TestGuaranteedPublishAllocBudget pins the full guaranteed QoS round —
// marshal, group-committed ledger append, daemon publish, local delivery,
// ack, ledger ack staging — at its current allocation count so the
// pipeline cannot silently regain per-message garbage. The batch
// machinery itself (staging buffers, freelists, the pending map) is
// amortised; what remains is the envelope copies, the pending-entry
// clone, and the per-batch done channel. scripts/check.sh runs this as a
// gate.
func TestGuaranteedPublishAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the budget is pinned by the non-race run in scripts/check.sh")
	}
	netCfg := netsim.DefaultConfig()
	netCfg.Speedup = 2000
	seg := transport.NewSimSegment(netCfg)
	defer seg.Close()
	host, err := core.NewHost(seg, "guaralloc", core.HostConfig{
		Reliable: reliable.Config{
			NakInterval:        2 * time.Millisecond,
			RetransmitInterval: 3 * time.Millisecond,
			HeartbeatInterval:  10 * time.Millisecond,
		},
		LedgerPath:    filepath.Join(t.TempDir(), "alloc.ledger"),
		RetryInterval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	bus, err := host.NewBus("p")
	if err != nil {
		t.Fatal(err)
	}
	conBus, err := host.NewBus("c")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := conBus.Subscribe("alloc.data")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range sub.C {
		}
	}()
	payload := make([]byte, 256)
	publish := func() {
		if _, err := bus.PublishGuaranteed("alloc.data", payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		publish()
	}
	// Measured 15 allocs/op today (see BenchmarkGuaranteedPublish
	// -benchmem); budget 20 leaves room for scheduler jitter without
	// letting a per-message regression through. Minimum over attempts for
	// the same reason as above: contention only adds allocations.
	best := testing.AllocsPerRun(20000, publish)
	for attempt := 0; attempt < 4 && best > 20; attempt++ {
		if a := testing.AllocsPerRun(20000, publish); a < best {
			best = a
		}
	}
	if best > 20 {
		t.Fatalf("guaranteed publish = %.2f allocs/op, budget 20", best)
	}
}
