#!/bin/sh
# check.sh — the full pre-merge gate for this repo.
#
#   scripts/check.sh          # build, vet, tests, race suite, fuzz smoke
#   scripts/check.sh -q       # skip the race suite and fuzz smoke (quick)
#
# The race suite must stay clean (see CLAUDE.md) and every network-facing
# codec keeps a fuzzer; the 5 s smoke here catches regressions in the
# parse-depth/length guards without the cost of a long fuzz run.

set -eu
cd "$(dirname "$0")/.."

quick=0
[ "${1:-}" = "-q" ] && quick=1

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> alloc gate (publish->deliver budget)"
go test -run TestPublishDeliverAllocBudget -count=1 .

echo "==> alloc gate (publish->deliver budget with the history tier sampling)"
go test -run TestPublishDeliverHistoryAllocBudget -count=1 .

echo "==> alloc gate (guaranteed publish budget)"
go test -run TestGuaranteedPublishAllocBudget -count=1 .

echo "==> alloc gate (router fast-path forward: 0 allocs/op)"
go test -run TestRouterForwardAllocBudget -count=1 ./internal/router/

echo "==> fsync gate (8 Sync publishers average well under one fsync/message)"
go test -run TestGroupCommitFsyncBudget -count=1 ./internal/ledger/

echo "==> wire-bytes gate (steady-state dictionary compression >= 40%)"
go test -run 'TestCompactGoldenBytes|TestSendDictSteadyStateAllocs' -count=1 ./internal/wire/

echo "==> quorum-liveness gate (replicated guaranteed delivery reaches quorum)"
go test -run TestQuorumLiveness -count=1 ./internal/qledger/

echo "==> lane-scaling gate (sharded delivery >= 3x at 8 cores; skips below 4 cores)"
go test -run TestLaneScalingGate -count=1 -v ./internal/bench/

echo "==> mesh-locality gate (50-segment ring: mesh confines flow to <= 4 segments)"
go test -run TestMeshLocalityGate -count=1 -v ./internal/bench/

if [ "$quick" -eq 0 ]; then
    echo "==> go test -race ./..."
    go test -race ./...

    echo "==> history-overhead smoke (tier on vs off must both complete; compare by eye against EXPERIMENTS.md A13)"
    go test -run xxx -bench BenchmarkHistoryOverhead -benchtime 100x -count=1 .

    echo "==> router-forward smoke (fast vs slow must both complete; compare by eye against EXPERIMENTS.md A15)"
    go test -run xxx -bench BenchmarkRouterForward -benchtime 100x -count=1 ./internal/router/

    echo "==> fuzz smoke (5s each)"
    go test -run xxx -fuzz 'FuzzUnmarshal$'        -fuzztime 5s ./internal/wire/
    go test -run xxx -fuzz 'FuzzUnmarshalCompact$' -fuzztime 5s ./internal/wire/
    go test -run xxx -fuzz 'FuzzStreamDecoder$'    -fuzztime 5s ./internal/wire/
    go test -run xxx -fuzz 'FuzzDecode$'           -fuzztime 5s ./internal/busproto/
    go test -run xxx -fuzz 'FuzzEnvelopePeek$'     -fuzztime 5s ./internal/busproto/
    go test -run xxx -fuzz 'FuzzParsePattern$'     -fuzztime 5s ./internal/subject/
    go test -run xxx -fuzz 'FuzzParseRecord$'      -fuzztime 5s ./internal/ledger/
    go test -run xxx -fuzz 'FuzzSegmentedReplay$'  -fuzztime 5s ./internal/ledger/
    go test -run xxx -fuzz 'FuzzReplFrame$'        -fuzztime 5s ./internal/qledger/
    go test -run xxx -fuzz 'FuzzMeshAd$'           -fuzztime 5s ./internal/mesh/
fi

echo "==> all checks passed"
