// Package infobus is the public facade of this reproduction of "The
// Information Bus — An Architecture for Extensible Distributed Systems"
// (Oki, Pfluegl, Siegel, Skeen; SOSP 1993).
//
// The bus disseminates self-describing data objects by subject:
//
//	seg := infobus.NewSimSegment(infobus.DefaultNetConfig())
//	host, _ := infobus.NewHost(seg, "trader-7", infobus.HostConfig{})
//	bus, _ := host.NewBus("news-monitor")
//
//	sub, _ := bus.Subscribe("news.equity.*")      // anonymous consumption (P4)
//	_ = bus.Publish("news.equity.gmc", story)     // reliable delivery
//	ev := <-sub.C                                  // ev.Value is a mop.Value
//
// Design principles realised here, with the packages that embody them:
//
//	P1 minimal core semantics  — internal/core, internal/reliable
//	P2 self-describing objects — internal/mop, internal/wire
//	P3 dynamic classing        — internal/tdl
//	P4 anonymous communication — internal/subject, internal/discovery
//
// Higher layers: request/reply RMI with discovery (internal/rmi),
// information routers bridging network segments (internal/router), the
// Object Repository adapter over a relational store (internal/repository,
// internal/relstore), feed and terminal adapters (internal/adapter), and
// the trading-floor example services (internal/monitor, internal/keyword).
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// reproduction of the paper's performance appendix.
package infobus

import (
	"infobus/internal/busproto"
	"infobus/internal/core"
	"infobus/internal/discovery"
	"infobus/internal/mop"
	"infobus/internal/netsim"
	"infobus/internal/qledger"
	"infobus/internal/reliable"
	"infobus/internal/rmi"
	"infobus/internal/router"
	"infobus/internal/subject"
	"infobus/internal/tdl"
	"infobus/internal/telemetry"
	"infobus/internal/transport"
)

// Core bus API.
type (
	// Host is one workstation: a transport endpoint plus its daemon.
	Host = core.Host
	// HostConfig tunes a host (reliable protocol, guaranteed-delivery
	// ledger, shared type registry).
	HostConfig = core.HostConfig
	// Bus is an application's handle on the Information Bus.
	Bus = core.Bus
	// Event is one received publication.
	Event = core.Event
	// Subscription is a live subject subscription.
	Subscription = core.Subscription
)

// Network substrate.
type (
	// NetConfig configures the simulated broadcast Ethernet.
	NetConfig = netsim.Config
	// Segment is a broadcast domain (simulated or UDP loopback).
	Segment = transport.Segment
	// ReliableConfig tunes the reliable-delivery protocol, including the
	// appendix's batching parameter.
	ReliableConfig = reliable.Config
)

// Meta-object protocol (P2).
type (
	// Type is an immutable type descriptor.
	Type = mop.Type
	// Attr is one named, typed attribute.
	Attr = mop.Attr
	// Operation is one operation signature in a type's interface.
	Operation = mop.Operation
	// Param is one operation parameter.
	Param = mop.Param
	// Object is a dynamic instance of a class.
	Object = mop.Object
	// Value is any dynamic value the bus can carry.
	Value = mop.Value
	// List is the dynamic list value.
	List = mop.List
	// Registry maps type names to classes; the run-time type universe.
	Registry = mop.Registry
)

// RMI (request/reply) and discovery.
type (
	// RMIServer serves method invocations for a service subject.
	RMIServer = rmi.Server
	// RMIClient invokes methods on a discovered server.
	RMIClient = rmi.Client
	// RMIServerOptions tune a server (load reporting, standby).
	RMIServerOptions = rmi.ServerOptions
	// RMIDialOptions tune discovery and invocation.
	RMIDialOptions = rmi.DialOptions
	// RMIHandler executes operations of a service object.
	RMIHandler = rmi.Handler
	// DiscoveryOptions tune a "Who's out there?" round.
	DiscoveryOptions = discovery.Options
	// Found is one discovered participant.
	Found = discovery.Found
	// Router bridges bus segments (the WAN information router).
	Router = router.Router
	// RouterAttachment names one bridged segment.
	RouterAttachment = router.Attachment
	// RouterOptions tune a router.
	RouterOptions = router.Options
	// TDL is the interpreted dynamic-classing language (P3).
	TDL = tdl.Interp
)

// Telemetry and self-hosted observability ("_sys.>").
type (
	// TelemetryConfig tunes metrics, per-hop tracing, and the periodic
	// "_sys.stats.<node>" export (HostConfig.Telemetry).
	TelemetryConfig = core.TelemetryConfig
	// TraceHop is one timestamped hop in a sampled publication's trace
	// (Event.Trace): the publisher daemon, each router crossed, the
	// consumer daemon.
	TraceHop = busproto.TraceHop
	// Metrics is a host's telemetry registry (Host.Metrics()).
	Metrics = telemetry.Registry
	// MetricValue is one exported metric in a registry snapshot.
	MetricValue = telemetry.Metric
	// HealthConfig enables and tunes the health tier — slow-consumer,
	// retransmit-storm, dedup-pressure, and ledger-backlog alarms plus the
	// flight recorder (TelemetryConfig.Health, RouterOptions.Health).
	HealthConfig = telemetry.HealthConfig
	// AlarmEvent is one alarm raise/clear edge (Host.ActiveAlarms()).
	AlarmEvent = telemetry.AlarmEvent
	// FlightRecorder is the fixed-size ring of notable bus events a
	// health-enabled node keeps (Host.Recorder()).
	FlightRecorder = telemetry.Recorder
	// TraceAssembler groups sampled hop traces (Event.Trace) into
	// per-route latency breakdowns; ibmon -sys uses it.
	TraceAssembler = telemetry.TraceAssembler
	// History is the flight-data recorder: fixed-window time-series rings
	// over a host's rates, depths, and latency percentiles
	// (TelemetryConfig.HistoryInterval, Host.History()).
	History = telemetry.History
	// HistoryDigest is a decoded SysHistory publication
	// (telemetry.ParseHistoryObject); ibmon -sys -watch renders these.
	HistoryDigest = telemetry.HistoryDigest
	// TopKEntry is one subject family's accounting row in the daemon's
	// bounded per-lane tables (published with every SysHistory object).
	TopKEntry = telemetry.TopKEntry
)

// System subjects. The "_sys.>" space is reserved: user publications are
// rejected with ErrReservedSubject, except SysPingSubject, where any
// application may publish a probe that exporting nodes answer on
// "_sys.pong.<node>".
const (
	SysStatsPrefix = telemetry.StatsSubjectPrefix
	SysPingSubject = telemetry.PingSubject
	SysPongPrefix  = telemetry.PongSubjectPrefix
	// SysAlarmPrefix: health alarm edges publish on
	// "_sys.alarm.<node>.<kind>" when TelemetryConfig.Health is enabled.
	SysAlarmPrefix = telemetry.AlarmSubjectPrefix
	// SysDumpSubject: the second user-publishable system subject; every
	// health-enabled node answers a probe here with its flight-recorder
	// dump on SysDumpedPrefix.<node>.
	SysDumpSubject = telemetry.DumpSubject
	// SysDumpedPrefix: flight-recorder dump answers.
	SysDumpedPrefix = telemetry.DumpedSubjectPrefix
	// SysHistorySubject: the third user-publishable system subject; every
	// history-enabled node answers a probe here with its flight-data window
	// (a SysHistory object) on "_sys.history.<node>", where it also
	// publishes periodic digests unprompted.
	SysHistorySubject = telemetry.HistorySubject
	// SysHistoryPrefix: per-node flight-data publications; subscribe
	// "_sys.history.>" for every node's windows and digests.
	SysHistoryPrefix = telemetry.HistorySubjectPrefix
	// SysTracePrefix: trace sidecars — stage hops known only after a traced
	// envelope departed (the quorum-ack stamp of a replicated guaranteed
	// publish) publish as SysTrace objects on "_sys.trace.<node>"; a
	// TraceAssembler merges them by trace id (AddSidecar).
	SysTracePrefix = telemetry.TraceSubjectPrefix
)

// ErrReservedSubject rejects user publications into "_sys.>".
var ErrReservedSubject = core.ErrReservedSubject

// ErrQuorumTimeout: a guaranteed publication on a replicated host
// (HostConfig.ReplicationFactor > 0) did not reach majority durability
// within ReplicaAckTimeout. The entry is still durable locally and
// retransmitted; only the quorum guarantee is unconfirmed.
var ErrQuorumTimeout = qledger.ErrQuorumTimeout

// Fundamental types of the meta-object protocol.
var (
	Bool   = mop.Bool
	Int    = mop.Int
	Float  = mop.Float
	String = mop.String
	Bytes  = mop.Bytes
	Time   = mop.Time
	Any    = mop.Any
)

// DefaultNetConfig returns the paper's testbed network: a lightly loaded
// 10 Mb/s Ethernet.
func DefaultNetConfig() NetConfig { return netsim.DefaultConfig() }

// NewSimSegment creates a simulated broadcast segment.
func NewSimSegment(cfg NetConfig) *transport.SimSegment { return transport.NewSimSegment(cfg) }

// NewUDPSegment creates a segment over real UDP loopback sockets.
func NewUDPSegment() *transport.UDPSegment { return transport.NewUDPSegment() }

// NewStaticUDPSegment creates a UDP segment for multi-process deployments:
// this process listens on listen and broadcasts to the peer addresses.
func NewStaticUDPSegment(listen string, peers []string) *transport.StaticUDPSegment {
	return transport.NewStaticUDPSegment(listen, peers)
}

// NewHost attaches a workstation to a segment. When the HostConfig's
// replication fields are set (ReplicationFactor > 0 and/or ReplicaDir),
// the quorum ledger tier (internal/qledger) is attached on top: committed
// guaranteed-delivery batches mirror to peer replicas, PublishGuaranteed
// acknowledges at majority durability, and the replica hosts elect a
// recovery coordinator that replays a dead publisher's pending entries.
func NewHost(seg Segment, name string, cfg HostConfig) (*Host, error) {
	h, err := core.NewHost(seg, name, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.ReplicationFactor > 0 || cfg.ReplicaDir != "" {
		_, err := qledger.Attach(h, qledger.Config{
			Factor:      cfg.ReplicationFactor,
			AckTimeout:  cfg.ReplicaAckTimeout,
			FsyncPolicy: cfg.ReplFsyncPolicy,
			Dir:         cfg.ReplicaDir,
		})
		if err != nil {
			_ = h.Close()
			return nil, err
		}
	}
	return h, nil
}

// NewRegistry creates an empty type registry.
func NewRegistry() *Registry { return mop.NewRegistry() }

// NewClass defines a class implementing the named type (P3 from Go code;
// use TDL for run-time definitions from source text).
func NewClass(name string, supers []*Type, attrs []Attr, ops []Operation) (*Type, error) {
	return mop.NewClass(name, supers, attrs, ops)
}

// ListOf returns the list type over an element type.
func ListOf(elem *Type) *Type { return mop.ListOf(elem) }

// NewObject instantiates a class with zero-valued attributes.
func NewObject(t *Type) (*Object, error) { return mop.New(t) }

// Print renders any value via the generic introspective print utility.
func Print(v Value) string { return mop.Sprint(v) }

// Describe renders a type's full interface.
func Describe(t *Type) string { return mop.DescribeString(t) }

// NewTDL creates a TDL interpreter registering classes into reg.
func NewTDL(reg *Registry) *TDL { return tdl.New(reg, nil) }

// Discover performs one "Who's out there?" round for a service subject.
func Discover(bus *Bus, service string, opts DiscoveryOptions) ([]Found, error) {
	return discovery.Discover(bus, service, opts)
}

// Announce answers discovery queries for a service subject.
func Announce(bus *Bus, service string, info func() Value) (*discovery.Announcer, error) {
	return discovery.Announce(bus, service, info)
}

// NewRMIServer serves a service subject with the given interface class and
// handler.
func NewRMIServer(bus *Bus, seg Segment, service string, iface *Type, h RMIHandler, opts RMIServerOptions) (*RMIServer, error) {
	return rmi.NewServer(bus, seg, service, iface, h, opts)
}

// DialRMI discovers servers for a service subject and connects to one.
func DialRMI(bus *Bus, seg Segment, service string, opts RMIDialOptions) (*RMIClient, error) {
	return rmi.Dial(bus, seg, service, opts)
}

// NewRouter bridges two or more segments with subject-aware forwarding.
func NewRouter(opts RouterOptions, atts ...RouterAttachment) (*Router, error) {
	return router.New(opts, atts...)
}

// ParseSubject validates a concrete subject name.
func ParseSubject(s string) (subject.Subject, error) { return subject.Parse(s) }

// ParsePattern validates a subscription pattern (wildcards allowed).
func ParsePattern(s string) (subject.Pattern, error) { return subject.ParsePattern(s) }
