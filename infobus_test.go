package infobus

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestPublicAPIOverSimSegment exercises the README quick-start path.
func TestPublicAPIOverSimSegment(t *testing.T) {
	netCfg := DefaultNetConfig()
	netCfg.Speedup = 2000
	seg := NewSimSegment(netCfg)
	defer seg.Close()

	host, err := NewHost(seg, "trader-7", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	bus, err := host.NewBus("news-monitor")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := bus.Subscribe("news.equity.*")
	if err != nil {
		t.Fatal(err)
	}

	story, err := NewClass("QuickStory", nil, []Attr{
		{Name: "headline", Type: String},
		{Name: "score", Type: Float},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := NewObject(story)
	if err != nil {
		t.Fatal(err)
	}
	obj.MustSet("headline", "GM surges").MustSet("score", 0.9)
	if err := bus.Publish("news.equity.gmc", obj); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.C:
		if ev.Subject.String() != "news.equity.gmc" {
			t.Errorf("subject = %s", ev.Subject)
		}
		rendered := Print(ev.Value)
		if !strings.Contains(rendered, `headline: "GM surges"`) {
			t.Errorf("Print = %q", rendered)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event never arrived")
	}
	if d := Describe(story); !strings.Contains(d, "class QuickStory") {
		t.Errorf("Describe = %q", d)
	}
}

// TestPublicAPIOverUDPSegment runs the same stack over real loopback UDP.
func TestPublicAPIOverUDPSegment(t *testing.T) {
	seg := NewUDPSegment()
	defer seg.Close()
	pubHost, err := NewHost(seg, "pub", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pubHost.Close()
	subHost, err := NewHost(seg, "sub", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer subHost.Close()

	subBus, _ := subHost.NewBus("consumer")
	sub, err := subBus.Subscribe("udp.check")
	if err != nil {
		t.Fatal(err)
	}
	pubBus, _ := pubHost.NewBus("producer")
	if err := pubBus.Publish("udp.check", int64(7)); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.C:
		if ev.Value != int64(7) {
			t.Errorf("value = %v", ev.Value)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("event never arrived over UDP")
	}
}

// TestPublicTDLAndDiscovery exercises the TDL and discovery facade.
func TestPublicTDLAndDiscovery(t *testing.T) {
	netCfg := DefaultNetConfig()
	netCfg.Speedup = 2000
	seg := NewSimSegment(netCfg)
	defer seg.Close()

	serverHost, err := NewHost(seg, "server", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer serverHost.Close()
	serverBus, _ := serverHost.NewBus("svc")

	interp := NewTDL(serverBus.Registry())
	if _, err := interp.EvalString(`(defclass Probe () ((id int)))`); err != nil {
		t.Fatal(err)
	}
	if !serverBus.Registry().Has("Probe") {
		t.Fatal("TDL class not registered via facade")
	}

	ann, err := Announce(serverBus, "svc.probe", func() Value { return "alive" })
	if err != nil {
		t.Fatal(err)
	}
	defer ann.Close()

	clientHost, err := NewHost(seg, "client", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer clientHost.Close()
	clientBus, _ := clientHost.NewBus("probe")
	found, err := Discover(clientBus, "svc.probe", DiscoveryOptions{Window: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Info != "alive" {
		t.Fatalf("found = %+v", found)
	}
}

func TestPublicSubjectHelpers(t *testing.T) {
	if _, err := ParseSubject("a.b.c"); err != nil {
		t.Error(err)
	}
	if _, err := ParseSubject("a.*"); err == nil {
		t.Error("wildcard accepted as concrete subject")
	}
	if _, err := ParsePattern("a.*.>"); err != nil {
		t.Error(err)
	}
	if _, err := ParsePattern(">.a"); err == nil {
		t.Error("misplaced > accepted")
	}
	if lt := ListOf(Int); lt.Name() != "list<int>" {
		t.Errorf("ListOf = %s", lt.Name())
	}
	if NewRegistry() == nil {
		t.Error("NewRegistry")
	}
}

// TestRMIOverUDPSegment runs discovery + request/reply over real loopback
// UDP sockets through the public facade.
func TestRMIOverUDPSegment(t *testing.T) {
	seg := NewUDPSegment()
	defer seg.Close()
	serverHost, err := NewHost(seg, "server", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer serverHost.Close()
	serverBus, _ := serverHost.NewBus("svc")

	iface, err := NewClass("EchoService", nil, nil, []Operation{
		{Name: "echo", Params: []Param{{Name: "s", Type: String}}, Result: String},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewRMIServer(serverBus, seg, "svc.echo", iface,
		func(op string, args []Value) (Value, error) {
			return "echo: " + args[0].(string), nil
		}, RMIServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clientHost, err := NewHost(seg, "client", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer clientHost.Close()
	clientBus, _ := clientHost.NewBus("app")
	c, err := DialRMI(clientBus, seg, "svc.echo", RMIDialOptions{
		DiscoveryWindow: 500 * time.Millisecond,
		Timeout:         2 * time.Second,
		Retries:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.Invoke("echo", "over-udp")
	if err != nil || got != "echo: over-udp" {
		t.Fatalf("invoke = %v, %v", got, err)
	}
}

// TestStaticUDPSegmentsEndToEnd exercises the multi-process deployment
// path (cmd/busd et al.) in-process: two static-peer UDP segments, one per
// "process", full bus stack on top.
func TestStaticUDPSegmentsEndToEnd(t *testing.T) {
	ports := freeUDPPorts(t, 2)
	segA := NewStaticUDPSegment(ports[0], []string{ports[1]})
	defer segA.Close()
	segB := NewStaticUDPSegment(ports[1], []string{ports[0]})
	defer segB.Close()

	hostA, err := NewHost(segA, "proc-a", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer hostA.Close()
	hostB, err := NewHost(segB, "proc-b", HostConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer hostB.Close()

	busB, _ := hostB.NewBus("monitor")
	sub, err := busB.Subscribe("cross.process.*")
	if err != nil {
		t.Fatal(err)
	}
	busA, _ := hostA.NewBus("console")
	if err := busA.Publish("cross.process.msg", "hello from process A"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.C:
		if ev.Value != "hello from process A" {
			t.Errorf("value = %v", ev.Value)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("publication never crossed processes")
	}
}

func freeUDPPorts(t *testing.T, n int) []string {
	t.Helper()
	conns := make([]*net.UDPConn, 0, n)
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		addrs = append(addrs, c.LocalAddr().String())
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return addrs
}
