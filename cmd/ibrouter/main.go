// Command ibrouter runs an information router (§3.1) bridging two
// multi-process UDP buses: publications cross only when the far side holds
// a matching subscription, with optional subject-prefix rewriting.
//
//	ibrouter \
//	  -a.listen 127.0.0.1:7101 -a.peers 127.0.0.1:7001 \
//	  -b.listen 127.0.0.1:7102 -b.peers 127.0.0.1:8001 \
//	  -b.rewrite fab5=plants.east.fab5
//
// With -mesh the router joins the interest-routed router mesh: routers
// sharing a segment discover each other over "_sys.mesh.>", elect a
// spanning tree (lowest -name wins root), and propagate aggregated
// interest hop by hop, so publications traverse only subscriber-bearing
// segments. Every router on the bus must agree on -mesh, and -name must be
// unique per router. Watch the tree with `ibmon -sys -mesh`.
//
//	ibrouter -name r-east -mesh -a.listen ... -b.listen ...
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"infobus"
	"infobus/internal/mesh"
	"infobus/internal/router"
	"infobus/internal/subject"
)

func main() {
	aListen := flag.String("a.listen", "127.0.0.1:7101", "side A listen address")
	aPeers := flag.String("a.peers", "", "side A bus hosts")
	aRewrite := flag.String("a.rewrite", "", "prefix rewrite applied to traffic forwarded ONTO side A (from=to)")
	bListen := flag.String("b.listen", "127.0.0.1:7102", "side B listen address")
	bPeers := flag.String("b.peers", "", "side B bus hosts")
	bRewrite := flag.String("b.rewrite", "", "prefix rewrite applied to traffic forwarded ONTO side B (from=to)")
	verbose := flag.Bool("v", false, "log every forwarded message")
	name := flag.String("name", "ibrouter", "router name (mesh id: must be unique per router, lowest becomes root)")
	meshOn := flag.Bool("mesh", false, "join the router mesh: spanning-tree election + hop-by-hop aggregated interest")
	flag.Parse()

	segA := infobus.NewStaticUDPSegment(*aListen, strings.Split(*aPeers, ","))
	segB := infobus.NewStaticUDPSegment(*bListen, strings.Split(*bPeers, ","))

	opts := infobus.RouterOptions{Name: *name}
	if *verbose {
		opts.Log = os.Stdout
	}
	if *meshOn {
		opts.Mesh = &mesh.Config{} // defaults: 100ms hellos, 50ms debounce
	}
	r, err := infobus.NewRouter(opts,
		infobus.RouterAttachment{Segment: segA, Name: "A", Rules: parseRules(*aRewrite)},
		infobus.RouterAttachment{Segment: segB, Name: "B", Rules: parseRules(*bRewrite)},
	)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibrouter: %v\n", err)
		os.Exit(1)
	}
	defer r.Close()
	fmt.Printf("ibrouter: bridging A(%s) <-> B(%s)\n", *aListen, *bListen)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Printf("ibrouter: final stats %+v\n", r.Stats())
			return
		case <-ticker.C:
			fmt.Printf("ibrouter: stats %+v\n", r.Stats())
			if st, ok := r.MeshStatus(); ok {
				fmt.Printf("ibrouter: mesh root=%s cost=%d parent=%q topo-changes=%d\n",
					st.Root, st.Cost, st.Parent, st.TopoChanges)
			}
		}
	}
}

func parseRules(spec string) []router.Rule {
	if spec == "" {
		return nil
	}
	from, to, ok := strings.Cut(spec, "=")
	if !ok {
		fmt.Fprintf(os.Stderr, "ibrouter: bad rewrite %q (want from=to)\n", spec)
		os.Exit(1)
	}
	match, err := subject.ParsePattern(from + ".>")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibrouter: bad rewrite prefix %q: %v\n", from, err)
		os.Exit(1)
	}
	return []router.Rule{{Match: match, FromPrefix: from, ToPrefix: to}}
}
