// Command busd runs an Information Bus host in its own OS process, over
// real UDP sockets, with an interactive console: the per-host daemon of
// §3.1 plus a small shell for publishing and subscribing.
//
// Start a two-host bus in two terminals:
//
//	busd -listen 127.0.0.1:7001 -peers 127.0.0.1:7002
//	busd -listen 127.0.0.1:7002 -peers 127.0.0.1:7001
//
// Console commands:
//
//	sub <pattern>            subscribe ("news.>", "fab5.*.temp", ...)
//	pub <subject> <text>     publish a string object
//	pubn <subject> <number>  publish an int object
//	pubg <subject> <text>    publish with guaranteed delivery (-ledger)
//	stats                    daemon and protocol counters
//	metrics                  full telemetry registry snapshot
//	alarms                   currently raised health alarms (-health)
//	dump                     flight-recorder dump (-health)
//	quit
//
// With -ledger <path> the host logs guaranteed publications (pubg) to a
// write-ahead log. -replication N mirrors committed batches to N peer
// replicas and acknowledges pubg at majority durability; peers started
// with -replica-dir <dir> store those mirrors and elect a recovery
// coordinator if the publisher dies (-replica-ack-timeout and -repl-fsync
// tune the quorum wait and replica durability).
//
// With -health <interval> the host runs the health tier: slow-consumer /
// retransmit-storm / dedup-pressure / ledger-backlog alarms publish on
// "_sys.alarm.<name>.<kind>", and "_sys.dump" probes are answered with the
// flight recorder. With -history <interval> it runs the flight-data tier:
// rates, depths, and latency percentiles sampled into ≈64 s rings,
// answering "_sys.history" probes (and publishing periodic digests) on
// "_sys.history.<name>". With -debug-addr the host serves net/http/pprof,
// a /metrics JSON snapshot, the /dump flight-recorder text, and the
// /history time-series window over HTTP. The debug server is off by
// default and meant for loopback addresses only — it exposes profiling
// data and is entirely unauthenticated; never bind it to a public
// interface.
//
// Anything received on a subscription is pretty-printed through the
// generic introspective print utility, whatever its type (P2).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"infobus"
	"infobus/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7001", "UDP listen address of this host")
	peers := flag.String("peers", "", "comma-separated UDP addresses of the other hosts")
	name := flag.String("name", "busd", "host name")
	statsEvery := flag.Duration("stats-interval", 0, "publish host stats on _sys.stats.<name> at this interval (0 disables)")
	sampling := flag.Float64("trace-sampling", 0, "fraction of publications to trace per-hop (0 disables, 1 every message)")
	healthEvery := flag.Duration("health", 0, "run the health tier (alarms on _sys.alarm.>, flight recorder) sampling at this interval (0 disables)")
	historyEvery := flag.Duration("history", 0, "run the flight-data tier (time-series history on _sys.history.<name>) sampling at this interval (0 disables; 250ms is typical)")
	debugAddr := flag.String("debug-addr", "", "serve pprof + /metrics + /dump + /history on this address (UNAUTHENTICATED: loopback only, e.g. 127.0.0.1:6060; empty disables)")
	compact := flag.Bool("compact", false, "publish with type-dictionary compression (class descriptors cross the wire once; receivers need no flag)")
	ledgerPath := flag.String("ledger", "", "write-ahead log path enabling guaranteed delivery (pubg); empty disables")
	replication := flag.Int("replication", 0, "mirror committed guaranteed batches to this many peer replicas and ack at majority durability (needs -ledger)")
	replicaAck := flag.Duration("replica-ack-timeout", 0, "how long pubg waits for a write quorum before reporting the guarantee unconfirmed (0 selects the default)")
	replFsync := flag.String("repl-fsync", "", "replica-side fsync policy: batch (fsync per applied run) or lazy (no fsync); empty selects batch")
	replicaDir := flag.String("replica-dir", "", "store mirrored peers' replica logs under this directory (enrolls the host as a replica)")
	deliveryLanes := flag.Int("delivery-lanes", 0, "shard subscription matching and client delivery queues across this many lanes (0 selects min(GOMAXPROCS, 8); 1 disables sharding)")
	flag.Parse()

	seg := infobus.NewStaticUDPSegment(*listen, strings.Split(*peers, ","))
	host, err := infobus.NewHost(seg, *name, infobus.HostConfig{
		CompactTypes:      *compact,
		LedgerPath:        *ledgerPath,
		LedgerSync:        *ledgerPath != "",
		ReplicationFactor: *replication,
		ReplicaAckTimeout: *replicaAck,
		ReplFsyncPolicy:   *replFsync,
		ReplicaDir:        *replicaDir,
		DeliveryLanes:     *deliveryLanes,
		Telemetry: infobus.TelemetryConfig{
			StatsInterval:   *statsEvery,
			TraceSampling:   *sampling,
			Health:          infobus.HealthConfig{Interval: *healthEvery},
			HistoryInterval: *historyEvery,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "busd: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()
	if *debugAddr != "" {
		handler := telemetry.DebugHandler(host.Metrics(), host.Recorder(), host.History())
		srv := &http.Server{Addr: *debugAddr, Handler: handler, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			fmt.Printf("busd: debug server on http://%s/ (pprof, /metrics, /dump, /history) — do not expose beyond loopback\n", *debugAddr)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "busd: debug server: %v\n", err)
			}
		}()
		defer srv.Close()
	}
	bus, err := host.NewBus("console")
	if err != nil {
		fmt.Fprintf(os.Stderr, "busd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("busd: host %q on %s (peers: %s)\n", *name, *listen, *peers)
	fmt.Println("busd: commands: sub <pattern> | pub <subject> <text> | pubn <subject> <n> | pubg <subject> <text> | stats | metrics | alarms | dump | quit")

	subs := make(map[string]*infobus.Subscription)
	printer := make(chan string, 64)
	go func() {
		for line := range printer {
			fmt.Println(line)
		}
	}()

	in := bufio.NewScanner(os.Stdin)
	for in.Scan() {
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "sub":
			if len(fields) != 2 {
				fmt.Println("usage: sub <pattern>")
				continue
			}
			pattern := fields[1]
			if _, dup := subs[pattern]; dup {
				fmt.Println("already subscribed")
				continue
			}
			sub, err := bus.Subscribe(pattern)
			if err != nil {
				fmt.Printf("sub: %v\n", err)
				continue
			}
			subs[pattern] = sub
			go func(pattern string, sub *infobus.Subscription) {
				for ev := range sub.C {
					printer <- fmt.Sprintf("<- [%s] %s", ev.Subject, infobus.Print(ev.Value))
				}
			}(pattern, sub)
			fmt.Printf("subscribed to %s\n", pattern)
		case "pubg":
			if len(fields) < 3 {
				fmt.Println("usage: pubg <subject> <text>")
				continue
			}
			id, err := bus.PublishGuaranteed(fields[1], strings.Join(fields[2:], " "))
			if err != nil {
				fmt.Printf("pubg: %v\n", err)
				continue
			}
			fmt.Printf("=> [%s] id=%d (guaranteed)\n", fields[1], id)
		case "pub", "pubn":
			if len(fields) < 3 {
				fmt.Printf("usage: %s <subject> <value>\n", fields[0])
				continue
			}
			var value infobus.Value
			if fields[0] == "pubn" {
				n, err := strconv.ParseInt(fields[2], 10, 64)
				if err != nil {
					fmt.Printf("pubn: %v\n", err)
					continue
				}
				value = n
			} else {
				value = strings.Join(fields[2:], " ")
			}
			if err := bus.Publish(fields[1], value); err != nil {
				fmt.Printf("pub: %v\n", err)
				continue
			}
			fmt.Printf("-> [%s] %s\n", fields[1], infobus.Print(value))
		case "stats":
			d := host.Daemon()
			fmt.Printf("daemon: %+v\n", d.Stats())
			fmt.Printf("reliable: %+v\n", d.Conn().Stats())
		case "metrics":
			for _, m := range host.Metrics().Snapshot() {
				fmt.Println(m)
			}
		case "alarms":
			alarms := host.ActiveAlarms()
			if host.Recorder() == nil {
				fmt.Println("health tier disabled (start with -health <interval>)")
				continue
			}
			if len(alarms) == 0 {
				fmt.Println("no alarms raised")
				continue
			}
			for _, a := range alarms {
				label := a.Kind
				if a.Target != "" {
					label += ":" + a.Target
				}
				fmt.Printf("RAISED %s value=%d threshold=%d\n", label, a.Value, a.Threshold)
			}
		case "dump":
			if text := host.HealthDump(); text != "" {
				fmt.Print(text)
			} else {
				fmt.Println("health tier disabled (start with -health <interval>)")
			}
		default:
			fmt.Printf("unknown command %q\n", fields[0])
		}
	}
}
