// Command ibrepo runs the Object Repository (§4) as a standalone process
// on a multi-process UDP bus, in both configurations at once:
//
//   - capture server: every object published under the -capture patterns
//     is decomposed into relations and stored, generating tables on the
//     fly for never-before-seen types;
//   - query server: the repository's RMI interface (store / load /
//     queryByType / queryEq / count) is served on the -service subject.
//
// Example:
//
//	ibrepo -listen 127.0.0.1:7005 -peers 127.0.0.1:7001 -capture 'news.>'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"infobus"
	"infobus/internal/relstore"
	"infobus/internal/repository"
	"infobus/internal/rmi"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7005", "UDP listen address")
	peers := flag.String("peers", "", "comma-separated UDP addresses of bus hosts")
	capture := flag.String("capture", "news.>", "comma-separated capture subject patterns")
	service := flag.String("service", "svc.repository", "RMI service subject of the query server")
	flag.Parse()

	seg := infobus.NewStaticUDPSegment(*listen, strings.Split(*peers, ","))
	host, err := infobus.NewHost(seg, "ibrepo", infobus.HostConfig{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibrepo: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()
	bus, err := host.NewBus("repository")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibrepo: %v\n", err)
		os.Exit(1)
	}

	repo := repository.New(relstore.NewDB(), bus.Registry())
	var patterns []string
	for _, p := range strings.Split(*capture, ",") {
		if p = strings.TrimSpace(p); p != "" {
			patterns = append(patterns, p)
		}
	}
	cs, err := repository.NewCaptureServer(repo, bus, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibrepo: capture: %v\n", err)
		os.Exit(1)
	}
	defer cs.Close()
	qs, err := repository.NewQueryServer(repo, bus, seg, *service, rmi.ServerOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibrepo: query server: %v\n", err)
		os.Exit(1)
	}
	defer qs.Close()
	fmt.Printf("ibrepo: capturing %v, serving %q on %s\n", patterns, *service, *listen)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Printf("ibrepo: captured %d objects into tables %v\n", cs.Captured(), repo.DB().Tables())
			return
		case <-ticker.C:
			fmt.Printf("ibrepo: captured=%d errors=%d tables=%d\n",
				cs.Captured(), cs.Errors(), len(repo.DB().Tables()))
		}
	}
}
