// Command ibmon is a bus monitor (sniffer): it joins a multi-process UDP
// bus, subscribes to the given patterns, and pretty-prints every received
// object through the introspective print utility — objects of types the
// monitor has never seen included, since types travel self-describing
// (P2).
//
//	ibmon -listen 127.0.0.1:7009 -peers 127.0.0.1:7001,127.0.0.1:7002 -sub '>'
//
// With -sys it watches the bus watching itself: it subscribes to the
// reserved "_sys.>" telemetry space and periodically publishes a probe on
// "_sys.ping", so every exporting node answers with a pong and a fresh
// SysStats object. Consecutive SysStats snapshots from the same node are
// differenced into per-interval rates (msgs/s, bytes/s, retransmits/s);
// SysAlarm raise/clear edges and SysDump flight-recorder answers render as
// one-line events and verbatim text. Sampled per-hop traces riding on
// observed publications are assembled into full stage paths —
// publisher → ledger-stage → group-commit → quorum-ack → … → consumer
// lane hops — with per-stage latency percentiles, printed on exit (and
// periodically with -traces); SysTrace sidecars on "_sys.trace.>" (the
// quorum-ack stamp of replicated guaranteed publications) merge into the
// assembled routes by trace id. The stats render through the same generic
// print path — ibmon links no telemetry schema.
//
//	ibmon -listen 127.0.0.1:7009 -peers 127.0.0.1:7001 -sys
//	ibmon -listen 127.0.0.1:7009 -peers 127.0.0.1:7001 -sys -dump
//
// With -sys -watch it renders live flight-data columns instead of raw
// events: each "_sys.history.<node>" digest (history-enabled nodes
// publish them every couple of seconds) becomes one line of rates, lane
// depth, commit/quorum percentiles, and the heaviest subject families.
//
//	ibmon -listen 127.0.0.1:7009 -peers 127.0.0.1:7001 -sys -watch
//
// With -sys -mesh it renders the router mesh: each "_sys.mesh.status.<node>"
// snapshot (routers publish them periodically when the mesh is enabled)
// becomes one line of spanning-tree state — elected root, hop cost, tree
// parent, and per-link port state / live peer count / aggregated remote
// interest. Mesh-flap alarms arrive through the ordinary "_sys.alarm"
// rendering.
//
//	ibmon -listen 127.0.0.1:7009 -peers 127.0.0.1:7001 -sys -mesh
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"infobus"
	"infobus/internal/mesh"
	"infobus/internal/mop"
	"infobus/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7009", "UDP listen address")
	peers := flag.String("peers", "", "comma-separated UDP addresses of bus hosts")
	subFlag := flag.String("sub", ">", "comma-separated subscription patterns")
	sys := flag.Bool("sys", false, "monitor bus telemetry: subscribe _sys.> and ping exporters")
	pingEvery := flag.Duration("ping", 5*time.Second, "probe interval in -sys mode (0 disables)")
	dump := flag.Bool("dump", false, "publish a _sys.dump probe on each ping tick (prints flight recorders)")
	traces := flag.Duration("traces", 0, "print the assembled trace table at this interval (0: only on exit)")
	watch := flag.Bool("watch", false, "live flight-data mode: render _sys.history digests as rate/percentile columns (implies -sys)")
	meshMode := flag.Bool("mesh", false, "render router-mesh status ads as spanning-tree/link rows (implies -sys)")
	flag.Parse()
	if *watch || *meshMode {
		*sys = true
	}

	seg := infobus.NewStaticUDPSegment(*listen, strings.Split(*peers, ","))
	host, err := infobus.NewHost(seg, "ibmon", infobus.HostConfig{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibmon: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()
	bus, err := host.NewBus("monitor")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibmon: %v\n", err)
		os.Exit(1)
	}

	mon := &monitor{
		rates: make(map[string]*snapshot),
		asm:   telemetry.NewTraceAssembler(),
		watch: *watch,
		mesh:  *meshMode,
	}

	patterns := strings.Split(*subFlag, ",")
	if *sys {
		patterns = []string{"_sys.>"}
	}
	for _, pattern := range patterns {
		pattern = strings.TrimSpace(pattern)
		if pattern == "" {
			continue
		}
		sub, err := bus.Subscribe(pattern)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibmon: subscribe %q: %v\n", pattern, err)
			os.Exit(1)
		}
		fmt.Printf("ibmon: watching %s\n", pattern)
		go func() {
			for ev := range sub.C {
				mon.handle(ev)
			}
		}()
	}

	if *sys && *pingEvery > 0 {
		go func() {
			nonce := time.Now().UnixNano()
			ticker := time.NewTicker(*pingEvery)
			defer ticker.Stop()
			for {
				nonce++
				if err := bus.Publish(infobus.SysPingSubject, nonce); err != nil {
					return
				}
				if *dump {
					if err := bus.Publish(infobus.SysDumpSubject, nonce); err != nil {
						return
					}
				}
				<-ticker.C
			}
		}()
	}
	if *traces > 0 {
		go func() {
			ticker := time.NewTicker(*traces)
			defer ticker.Stop()
			for range ticker.C {
				if len(mon.asm.Routes()) > 0 {
					fmt.Print(mon.asm.Render())
				}
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	if len(mon.asm.Routes()) > 0 {
		fmt.Print(mon.asm.Render())
	}
	fmt.Println("ibmon: bye")
}

// monitor holds the -sys state: last stats snapshot per node (for rate
// differencing) and the trace assembler. All access is from the single
// subscription goroutine per pattern; with -sys there is exactly one
// pattern, so no locking is needed — the assembler locks internally for
// the periodic Render goroutine.
type monitor struct {
	rates      map[string]*snapshot
	asm        *telemetry.TraceAssembler
	watch      bool
	mesh       bool
	header     bool
	meshHeader bool
}

type snapshot struct {
	at       time.Time
	counters map[string]int64
}

func (m *monitor) handle(ev infobus.Event) {
	if len(ev.Trace) >= 2 {
		m.asm.AddTraced(ev.TraceID, ev.Trace)
	}
	subj := ev.Subject.String()
	switch {
	case strings.HasPrefix(subj, infobus.SysTracePrefix+"."):
		// Trace sidecar: late stage hops (quorum ack) merging by trace id.
		if o, ok := ev.Value.(*mop.Object); ok {
			if _, id, hops, ok := telemetry.ParseTraceObject(o); ok {
				m.asm.AddSidecar(id, hops)
				return
			}
		}
	case strings.HasPrefix(subj, mesh.StatusSubjectPrefix+"."):
		if m.mesh {
			if line, ok := m.meshLine(ev.Value); ok {
				fmt.Println(line)
			}
			return
		}
	case strings.HasPrefix(subj, infobus.SysHistoryPrefix+"."):
		if line, ok := m.historyLine(ev.Value); ok {
			fmt.Println(line)
			return
		}
	case strings.HasPrefix(subj, infobus.SysStatsPrefix+"."):
		if m.watch || m.mesh {
			return
		}
		if line, ok := m.statsLine(ev.Value); ok {
			fmt.Println(line)
			return
		}
	case strings.HasPrefix(subj, infobus.SysAlarmPrefix+"."):
		if line, ok := alarmLine(ev.Value); ok {
			fmt.Println(line)
			return
		}
	case strings.HasPrefix(subj, infobus.SysDumpedPrefix+"."):
		if text, ok := dumpText(ev.Value); ok {
			fmt.Print(text)
			return
		}
	}
	if m.watch || m.mesh {
		return // live modes show their tables and alarms only
	}
	qos := ""
	if ev.Guaranteed {
		qos = " (guaranteed)"
	}
	fmt.Printf("[%s]%s %s\n", subj, qos, infobus.Print(ev.Value))
}

// historyLine renders one SysHistory digest as a row of rate/percentile
// columns: publication and delivery rates averaged over the digest
// window, the delivery-lane backlog, commit and quorum latency p95s, and
// the heaviest subject families.
func (m *monitor) historyLine(v infobus.Value) (string, bool) {
	o, ok := v.(*mop.Object)
	if !ok {
		return "", false
	}
	d, ok := telemetry.ParseHistoryObject(o)
	if !ok {
		return "", false
	}
	var b strings.Builder
	if m.watch && !m.header {
		m.header = true
		b.WriteString(fmt.Sprintf("%-12s %9s %9s %9s %7s %10s %10s  %s\n",
			"node", "pub/s", "in/s", "dlv/s", "depth", "commit p95", "quorum p95", "top families"))
	}
	rate := func(name string) string {
		for _, s := range d.Snapshot.Series {
			if s.Name != name || len(s.Samples) == 0 {
				continue
			}
			var sum int64
			for _, smp := range s.Samples {
				sum += smp.V
			}
			per := d.Snapshot.RatePerSec(sum) / float64(len(s.Samples))
			return fmt.Sprintf("%.0f", per)
		}
		return "-"
	}
	level := func(name string) string {
		for _, s := range d.Snapshot.Series {
			if s.Name != name || len(s.Samples) == 0 {
				continue
			}
			return fmt.Sprintf("%d", s.Samples[len(s.Samples)-1].V)
		}
		return "-"
	}
	p95 := func(name string) string {
		for _, s := range d.Snapshot.Series {
			if s.Name != name || len(s.Samples) == 0 {
				continue
			}
			// Latest window with observations; earlier ones may be idle.
			for i := len(s.Samples) - 1; i >= 0; i-- {
				if s.Samples[i].V > 0 {
					return time.Duration(s.Samples[i].P95).Round(time.Microsecond).String()
				}
			}
			return "idle"
		}
		return "-"
	}
	fams := make([]string, 0, 3)
	for i, f := range d.Families {
		if i == 3 {
			break
		}
		fams = append(fams, fmt.Sprintf("%s(%d)", f.Family, f.Msgs))
	}
	b.WriteString(fmt.Sprintf("%-12s %9s %9s %9s %7s %10s %10s  %s",
		d.Node, rate("bus.published"), rate("daemon.inbound"),
		rate("daemon.delivered_local"), level("daemon.lane_depth"),
		p95("ledger.commit_ns"), p95("qledger.quorum_wait_ns"),
		strings.Join(fams, " ")))
	for _, a := range d.Snapshot.Alarms {
		edge := "CLEAR"
		if a.Raised {
			edge = "RAISE"
		}
		b.WriteString(fmt.Sprintf("\n[alarm edge %s] %s %s:%s value=%d at %s",
			d.Node, edge, a.Kind, a.Target, a.Value,
			time.Unix(0, a.At).Format("15:04:05.000")))
	}
	return b.String(), true
}

// meshLine renders one MeshStatus snapshot as a spanning-tree row: the
// elected root, this router's hop cost and tree parent, then one cell per
// link with its port state, live peer count, and the aggregated remote
// interest heard there (first few prefixes). The ad is self-describing —
// the decoder walks the generic object, so a monitor built before a field
// was added still renders the rest.
func (m *monitor) meshLine(v infobus.Value) (string, bool) {
	o, ok := v.(*mop.Object)
	if !ok {
		return "", false
	}
	ad, ok := mesh.ParseStatusObject(o)
	if !ok {
		return "", false
	}
	var b strings.Builder
	if !m.meshHeader {
		m.meshHeader = true
		b.WriteString(fmt.Sprintf("%-12s %-10s %4s %-10s  %s\n",
			"router", "root", "cost", "parent", "links (state/peers/remote-interest)"))
	}
	parent := ad.Parent
	if parent == "" {
		parent = "-" // the root has no parent
	}
	cells := make([]string, 0, len(ad.Links))
	for _, l := range ad.Links {
		pats := ""
		if n := len(l.Patterns); n > 0 {
			show := l.Patterns
			if n > 3 {
				show = show[:3]
			}
			pats = " " + strings.Join(show, ",")
			if n > 3 {
				pats += fmt.Sprintf(",+%d", n-3)
			}
		}
		cells = append(cells, fmt.Sprintf("%s[%s/%d%s]", l.Name, l.State, l.Peers, pats))
	}
	b.WriteString(fmt.Sprintf("%-12s %-10s %4d %-10s  %s",
		ad.Router, ad.Root, ad.Cost, parent, strings.Join(cells, " ")))
	return b.String(), true
}

// statsLine differences a SysStats snapshot against the node's previous
// one: msgs/s from the daemon's inbound counter (router.forwarded for
// routers), bytes/s from the reliable streams' delivered-byte counters,
// retransmits/s from their retransmission counters.
func (m *monitor) statsLine(v infobus.Value) (string, bool) {
	o, ok := v.(*mop.Object)
	if !ok {
		return "", false
	}
	node, _ := getString(o, "node")
	at, _ := getTime(o, "at")
	if node == "" || at.IsZero() {
		return "", false
	}
	cur := &snapshot{at: at, counters: make(map[string]int64)}
	if list, err := o.Get("metrics"); err == nil {
		if metrics, ok := list.(mop.List); ok {
			for _, mv := range metrics {
				mo, ok := mv.(*mop.Object)
				if !ok {
					continue
				}
				name, _ := getString(mo, "name")
				kind, _ := getString(mo, "kind")
				val, _ := getInt(mo, "value")
				if kind == "counter" || kind == "gauge" {
					cur.counters[name] = val
				}
			}
		}
	}
	prev := m.rates[node]
	m.rates[node] = cur
	if prev == nil {
		return fmt.Sprintf("[stats %s] baseline snapshot (%d metrics)", node, len(cur.counters)), true
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return fmt.Sprintf("[stats %s] duplicate snapshot", node), true
	}
	rate := func(names ...string) float64 {
		var d int64
		for name := range cur.counters {
			for _, want := range names {
				if name == want || strings.HasSuffix(name, want) {
					d += cur.counters[name] - prev.counters[name]
					break
				}
			}
		}
		return float64(d) / dt
	}
	msgs := rate("daemon.inbound", "router.forwarded")
	bytes := rate(".delivered_bytes")
	retx := rate(".retransmits")
	return fmt.Sprintf("[stats %s] %.0f msgs/s  %s/s  %.0f retx/s (over %.1fs)",
		node, msgs, fmtBytes(bytes), retx, dt), true
}

// alarmLine renders a SysAlarm edge: RAISE in the caller's face, clear
// quietly symmetric.
func alarmLine(v infobus.Value) (string, bool) {
	o, ok := v.(*mop.Object)
	if !ok {
		return "", false
	}
	node, ok1 := getString(o, "node")
	kind, ok2 := getString(o, "kind")
	if !ok1 || !ok2 {
		return "", false
	}
	target, _ := getString(o, "target")
	raised := false
	if rv, err := o.Get("raised"); err == nil {
		raised, _ = rv.(bool)
	}
	value, _ := getInt(o, "value")
	threshold, _ := getInt(o, "threshold")
	edge := "CLEAR"
	if raised {
		edge = "RAISE"
	}
	at := ""
	if t, ok := getTime(o, "at"); ok {
		at = " at " + t.Format("15:04:05.000")
	}
	if target != "" {
		kind += ":" + target
	}
	return fmt.Sprintf("[alarm %s] %s %s value=%d threshold=%d%s",
		node, edge, kind, value, threshold, at), true
}

// dumpText renders a SysDump answer: a header plus the node's verbatim
// flight-recorder text, indented so interleaved dumps stay readable.
func dumpText(v infobus.Value) (string, bool) {
	o, ok := v.(*mop.Object)
	if !ok {
		return "", false
	}
	node, ok1 := getString(o, "node")
	text, ok2 := getString(o, "text")
	if !ok1 || !ok2 {
		return "", false
	}
	events, _ := getInt(o, "events")
	var b strings.Builder
	fmt.Fprintf(&b, "[dump %s] %d events recorded\n", node, events)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String(), true
}

func getString(o *mop.Object, name string) (string, bool) {
	v, err := o.Get(name)
	if err != nil {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

func getInt(o *mop.Object, name string) (int64, bool) {
	v, err := o.Get(name)
	if err != nil {
		return 0, false
	}
	n, ok := v.(int64)
	return n, ok
}

func getTime(o *mop.Object, name string) (time.Time, bool) {
	v, err := o.Get(name)
	if err != nil {
		return time.Time{}, false
	}
	t, ok := v.(time.Time)
	return t, ok
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}
