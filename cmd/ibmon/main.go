// Command ibmon is a bus monitor (sniffer): it joins a multi-process UDP
// bus, subscribes to the given patterns, and pretty-prints every received
// object through the introspective print utility — objects of types the
// monitor has never seen included, since types travel self-describing
// (P2).
//
//	ibmon -listen 127.0.0.1:7009 -peers 127.0.0.1:7001,127.0.0.1:7002 -sub '>'
//
// With -sys it watches the bus watching itself: it subscribes to the
// reserved "_sys.>" telemetry space and periodically publishes a probe on
// "_sys.ping", so every exporting node answers with a pong and a fresh
// SysStats object. The stats render through the same generic print path —
// ibmon links no telemetry schema.
//
//	ibmon -listen 127.0.0.1:7009 -peers 127.0.0.1:7001 -sys
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"infobus"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7009", "UDP listen address")
	peers := flag.String("peers", "", "comma-separated UDP addresses of bus hosts")
	subFlag := flag.String("sub", ">", "comma-separated subscription patterns")
	sys := flag.Bool("sys", false, "monitor bus telemetry: subscribe _sys.> and ping exporters")
	pingEvery := flag.Duration("ping", 5*time.Second, "probe interval in -sys mode (0 disables)")
	flag.Parse()

	seg := infobus.NewStaticUDPSegment(*listen, strings.Split(*peers, ","))
	host, err := infobus.NewHost(seg, "ibmon", infobus.HostConfig{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibmon: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()
	bus, err := host.NewBus("monitor")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibmon: %v\n", err)
		os.Exit(1)
	}

	patterns := strings.Split(*subFlag, ",")
	if *sys {
		patterns = []string{"_sys.>"}
	}
	for _, pattern := range patterns {
		pattern = strings.TrimSpace(pattern)
		if pattern == "" {
			continue
		}
		sub, err := bus.Subscribe(pattern)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibmon: subscribe %q: %v\n", pattern, err)
			os.Exit(1)
		}
		fmt.Printf("ibmon: watching %s\n", pattern)
		go func() {
			for ev := range sub.C {
				qos := ""
				if ev.Guaranteed {
					qos = " (guaranteed)"
				}
				fmt.Printf("[%s]%s %s\n", ev.Subject, qos, infobus.Print(ev.Value))
			}
		}()
	}

	if *sys && *pingEvery > 0 {
		go func() {
			nonce := time.Now().UnixNano()
			ticker := time.NewTicker(*pingEvery)
			defer ticker.Stop()
			for {
				nonce++
				if err := bus.Publish(infobus.SysPingSubject, nonce); err != nil {
					return
				}
				<-ticker.C
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Println("ibmon: bye")
}
