// Command tdlrun runs TDL programs — the interpreted dynamic-classing
// language of principle P3 — from files or as an interactive REPL.
//
//	tdlrun program.tdl          # run a file
//	tdlrun                      # REPL (one expression per line)
//	echo '(+ 1 2)' | tdlrun -
//
// Classes defined in a session register into one shared type registry, so
// a REPL session can defclass, make-instance, defmethod, and introspect
// exactly as a running bus application would.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"infobus"
	"infobus/internal/tdl"
)

func main() {
	flag.Parse()
	reg := infobus.NewRegistry()
	interp := tdl.New(reg, os.Stdout)

	args := flag.Args()
	if len(args) == 0 {
		repl(interp)
		return
	}
	for _, path := range args {
		var src []byte
		var err error
		if path == "-" {
			src, err = io.ReadAll(os.Stdin)
		} else {
			src, err = os.ReadFile(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdlrun: %v\n", err)
			os.Exit(1)
		}
		v, err := interp.EvalString(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tdlrun: %s: %v\n", path, err)
			os.Exit(1)
		}
		if v != nil {
			fmt.Println(tdl.FormatValue(v))
		}
	}
}

func repl(interp *tdl.Interp) {
	fmt.Println("tdlrun: TDL REPL — (defclass ...), (make-instance 'C ...), (describe 'C); ctrl-D to exit")
	in := bufio.NewScanner(os.Stdin)
	depth := 0
	var pending string
	for {
		if depth > 0 {
			fmt.Print("...> ")
		} else {
			fmt.Print("tdl> ")
		}
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := in.Text()
		pending += line + "\n"
		depth = parenDepth(pending)
		if depth > 0 {
			continue // expression continues on the next line
		}
		src := pending
		pending = ""
		if len(src) == 0 || src == "\n" {
			continue
		}
		v, err := interp.EvalString(src)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		fmt.Println(tdl.FormatValue(v))
	}
}

// parenDepth counts unbalanced parentheses outside string literals.
func parenDepth(s string) int {
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == ';': // comment to end of line
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '(':
			depth++
		case c == ')':
			depth--
		}
	}
	if depth < 0 {
		return 0 // let the parser report the error
	}
	return depth
}
