// Command ibuild is the text-mode Graphical Application Builder (§5.1):
// point it at any RMI service subject on a multi-process UDP bus and it
// constructs a user interface for the service entirely from the
// introspected interface — menu of operations, a prompt per parameter,
// results printed through the generic print utility. "This whole process
// requires only a few minutes, and typically no compilation is involved."
//
//	ibuild -listen 127.0.0.1:7008 -peers 127.0.0.1:7001 -service svc.repository
//
// With -sys it browses the bus's own telemetry instead: live
// "_sys.stats.<node>" objects, rendered through the same introspective
// machinery, with a ping command that probes every exporting node.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"infobus"
	"infobus/internal/appbuilder"
	"infobus/internal/rmi"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7008", "UDP listen address")
	peers := flag.String("peers", "", "comma-separated UDP addresses of bus hosts")
	service := flag.String("service", "", "RMI service subject to build a UI for")
	sys := flag.Bool("sys", false, "browse bus telemetry (_sys.>) instead of an RMI service")
	flag.Parse()
	if *service == "" && !*sys {
		fmt.Fprintln(os.Stderr, "ibuild: -service or -sys is required")
		os.Exit(2)
	}

	seg := infobus.NewStaticUDPSegment(*listen, strings.Split(*peers, ","))
	host, err := infobus.NewHost(seg, "ibuild", infobus.HostConfig{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibuild: %v\n", err)
		os.Exit(1)
	}
	defer host.Close()
	bus, err := host.NewBus("builder")
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibuild: %v\n", err)
		os.Exit(1)
	}
	if *sys {
		browser, err := appbuilder.BrowseSys(bus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ibuild: %v\n", err)
			os.Exit(1)
		}
		defer browser.Close()
		if err := browser.Run(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ibuild: %v\n", err)
			os.Exit(1)
		}
		return
	}
	ui, err := appbuilder.Build(bus, seg, *service, rmi.DialOptions{
		DiscoveryWindow: 500 * time.Millisecond,
		Timeout:         2 * time.Second,
		Retries:         2,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ibuild: %v\n", err)
		os.Exit(1)
	}
	defer ui.Close()
	if err := ui.Run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ibuild: %v\n", err)
		os.Exit(1)
	}
}
