// Command ibbench regenerates the paper's performance appendix — Figures
// 5, 6, 7, and 8 — and the two stated invariants (I1: latency independent
// of consumer count; I2: cumulative throughput proportional to subscriber
// count) on the simulated 10 Mb/s Ethernet testbed.
//
// Usage:
//
//	ibbench -fig all                  # every figure (slow, high fidelity)
//	ibbench -fig 5                    # latency vs message size
//	ibbench -fig 6 -msgs 3000         # throughput, more samples
//	ibbench -fig 8 -subjects 10000    # the full 10k-subject sweep
//	ibbench -fig i1                   # invariant I1
//	ibbench -speedup 50               # faster run, lower fidelity
//
// All reported numbers are in modelled network time, so -speedup trades
// run time against measurement fidelity (host CPU becomes visible at high
// speedups), not against the shape of the curves.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"infobus/internal/bench"
	"infobus/internal/telemetry"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: 5, 6, 7, 8, i1, i2, a8, a9, a10, a11, a12, a13, a14, a15, or all")
	consumers := flag.Int("consumers", 14, "number of consumer hosts")
	speedup := flag.Float64("speedup", 20, "simulation speedup factor")
	msgs := flag.Int("msgs", 1000, "messages per throughput point")
	latMsgs := flag.Int("latmsgs", 100, "messages per latency point")
	subjects := flag.Int("subjects", 10000, "subject count for figure 8")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Consumers = *consumers
	cfg.Net.Speedup = *speedup

	start := time.Now()
	run := func(name string, f func() error) {
		switch *fig {
		case "all", name:
			if err := f(); err != nil {
				fmt.Fprintf(os.Stderr, "ibbench: figure %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}

	run("5", func() error {
		rows, err := bench.Figure5(cfg, bench.PaperSizes, *latMsgs)
		if err != nil {
			return err
		}
		bench.PrintFigure5(os.Stdout, rows)
		return nil
	})

	var thr []bench.ThroughputResult
	run("6", func() error {
		var err error
		thr, err = bench.Figure67(cfg, bench.PaperSizes, *msgs)
		if err != nil {
			return err
		}
		bench.PrintFigure6(os.Stdout, thr)
		return nil
	})
	run("7", func() error {
		if thr == nil {
			var err error
			thr, err = bench.Figure67(cfg, bench.PaperSizes, *msgs)
			if err != nil {
				return err
			}
		}
		bench.PrintFigure7(os.Stdout, thr)
		return nil
	})
	run("8", func() error {
		// The subject-count experiment stresses matching, not fan-out:
		// fewer consumers keep memory bounded at 10k subjects x N hosts
		// without changing what the figure demonstrates.
		f8cfg := cfg
		if f8cfg.Consumers > 4 {
			f8cfg.Consumers = 4
		}
		counts := []int{1, *subjects}
		sizes := []int{64, 512, 1024, 4096, 10240}
		results, err := bench.Figure8(f8cfg, sizes, *msgs, counts)
		if err != nil {
			return err
		}
		bench.PrintFigure8(os.Stdout, results, counts)
		return nil
	})
	run("i1", func() error {
		counts := []int{1, 2, 4, 8, 14}
		rows, cs, err := bench.InvariantLatencyVsConsumers(cfg, counts, 1024, *latMsgs)
		if err != nil {
			return err
		}
		bench.PrintInvariantI1(os.Stdout, rows, cs)
		return nil
	})
	run("i2", func() error {
		counts := []int{1, 2, 4, 8, 14}
		rows, err := bench.InvariantThroughputVsSubscribers(cfg, counts, 1024, *msgs)
		if err != nil {
			return err
		}
		bench.PrintInvariantI2(os.Stdout, rows)
		return nil
	})
	run("a8", func() error {
		// A8: health-tier overhead on the Figure 6 workload when no alarms
		// fire. Every host runs the alarm engine (5 ms sampling) and flight
		// recorder; all signals stay below their watermarks, so the tick
		// loop only reads atomics. Overhead should be within noise.
		fmt.Println("A8: health-tier overhead (Figure 6 workload, alarms idle)")
		fmt.Printf("%10s %18s %18s %9s\n", "size", "off msgs/s", "on msgs/s", "delta")
		for _, size := range bench.PaperSizes {
			off, err := bench.MeasureThroughput(cfg, size, *msgs, 1)
			if err != nil {
				return err
			}
			oncfg := cfg
			oncfg.Telemetry.Health = telemetry.HealthConfig{Interval: 5 * time.Millisecond}
			on, err := bench.MeasureThroughput(oncfg, size, *msgs, 1)
			if err != nil {
				return err
			}
			delta := (on.MsgsPerSec - off.MsgsPerSec) / off.MsgsPerSec * 100
			fmt.Printf("%10d %18.0f %18.0f %8.1f%%\n", size, off.MsgsPerSec, on.MsgsPerSec, delta)
		}
		return nil
	})
	run("a13", func() error {
		// A13: flight-data tier overhead on the Figure 6 workload. Every
		// host samples its standing rate/level/percentile series into the
		// history rings at 5 ms (the production default is 250 ms) and
		// publishes periodic SysHistory digests; the sampler reads atomics
		// and writes preallocated seqlock slots, so overhead should be
		// within noise like A8.
		fmt.Println("A13: flight-data history tier overhead (Figure 6 workload)")
		fmt.Printf("%10s %18s %18s %9s\n", "size", "off msgs/s", "on msgs/s", "delta")
		for _, size := range bench.PaperSizes {
			off, err := bench.MeasureThroughput(cfg, size, *msgs, 1)
			if err != nil {
				return err
			}
			oncfg := cfg
			oncfg.Telemetry.HistoryInterval = 5 * time.Millisecond
			on, err := bench.MeasureThroughput(oncfg, size, *msgs, 1)
			if err != nil {
				return err
			}
			delta := (on.MsgsPerSec - off.MsgsPerSec) / off.MsgsPerSec * 100
			fmt.Printf("%10d %18.0f %18.0f %8.1f%%\n", size, off.MsgsPerSec, on.MsgsPerSec, delta)
		}
		return nil
	})
	run("a9", func() error {
		// A9: type-dictionary compression. Codec-level wire bytes + CPU,
		// then the Figure 6 workload with structured objects, dictionary
		// off vs on.
		rows, err := bench.MeasureDictCompression(0)
		if err != nil {
			return err
		}
		bench.PrintFigureA9(os.Stdout, rows)
		fmt.Println()
		var trows []bench.DictThroughputRow
		for _, shape := range bench.DictShapes() {
			row, err := bench.MeasureDictThroughput(cfg, shape, *msgs)
			if err != nil {
				return err
			}
			trows = append(trows, row)
		}
		bench.PrintFigureA9Throughput(os.Stdout, trows)
		return nil
	})

	run("a10", func() error {
		// A10: the group-commit ledger against the per-append-fsync
		// baseline. Real filesystem, real time: -speedup does not apply to
		// this figure (an fsync cannot be simulated faster).
		rows, err := bench.FigureA10([]int{1, 2, 4, 8}, 0)
		if err != nil {
			return err
		}
		bench.PrintFigureA10(os.Stdout, rows)
		return nil
	})

	run("a11", func() error {
		// A11: replicated guaranteed delivery. Like A10 the fsyncs are
		// real, so wall time dominates; -speedup only accelerates the
		// simulated network between the publisher and its replicas.
		rows, err := bench.FigureA11(cfg.Net, 0, 0)
		if err != nil {
			return err
		}
		bench.PrintFigureA11(os.Stdout, rows)
		return nil
	})

	run("a12", func() error {
		// A12: the sharded delivery engine. CPU-bound by construction —
		// the harness pins the simulated wire at a very high speedup so
		// the medium never throttles local delivery, and -speedup does
		// not apply (like A10's fsyncs). The lanes-vs-1 ratio is the
		// published quantity; it only exceeds 1 on a multicore host.
		laneCounts := []int{1, 2, 4, 8}
		rows, err := bench.FigureA12(cfg, laneCounts, []int{64, 256, 512}, *msgs)
		if err != nil {
			return err
		}
		bench.PrintFigureA12(os.Stdout, rows)
		fmt.Printf("(GOMAXPROCS=%d)\n", runtime.GOMAXPROCS(0))
		return nil
	})

	run("a14", func() error {
		// A14: interest locality of the router mesh. A 50-segment ring with
		// 100 stub hosts per segment; the measured flow's subscribers live
		// on only the two segments next to the publisher. The pairwise
		// flood baseline spreads the publication to every segment inside
		// the 8-hop envelope budget (17 segments); the mesh confines it to
		// the subscriber-bearing three. Convergence is wall-clock paced
		// (relay ticks, hello timers), so -speedup mostly trades medium
		// fidelity, not run time.
		rows, err := bench.FigureA14(cfg.Net, 50, 100, *msgs/25)
		if err != nil {
			return err
		}
		bench.PrintFigureA14(os.Stdout, rows)
		return nil
	})

	run("a15", func() error {
		// A15: the router's zero-copy data plane. CPU-bound (in-process
		// pipe transport, no netsim): msgs/s through a 4-segment router
		// fan-out, decode/re-encode baseline vs the single-copy fast path.
		// -speedup does not apply; -msgs scales the per-point sample.
		rows, err := bench.FigureA15([]int{64, 512, 4096}, *msgs*20)
		if err != nil {
			return err
		}
		bench.PrintFigureA15(os.Stdout, rows)
		return nil
	})

	fmt.Printf("ibbench: completed in %v (speedup %.0fx, %d consumers)\n",
		time.Since(start).Round(time.Millisecond), *speedup, *consumers)
}
