//go:build !race

package infobus

// raceEnabled reports whether the race detector is instrumenting this
// binary; see race_on_test.go for the counterpart.
const raceEnabled = false
